// End-to-end integration tests on the paper's own example (Table 1 /
// Figures 3-7): cross-solver agreement and the qualitative claims the
// figures make.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "bounds/moment_bounds.hpp"
#include "core/moment_utils.hpp"
#include "core/ode_solver.hpp"
#include "core/randomization.hpp"
#include "ctmc/occupancy.hpp"
#include "ctmc/stationary.hpp"
#include "models/onoff.hpp"
#include "models/reliability.hpp"
#include "sim/simulator.hpp"

namespace somrm {
namespace {

core::SecondOrderMrm table1_model(double sigma2) {
  return models::make_onoff_multiplexer(models::table1_params(sigma2));
}

TEST(PaperExampleTest, Figure3MeanIndependentOfVariance) {
  core::MomentSolverOptions opts;
  opts.max_moment = 1;
  opts.epsilon = 1e-10;
  const std::vector<double> times{0.1, 0.25, 0.5, 1.0};

  const core::RandomizationMomentSolver s0(table1_model(0.0));
  const core::RandomizationMomentSolver s1(table1_model(1.0));
  const core::RandomizationMomentSolver s10(table1_model(10.0));
  const auto r0 = s0.solve_multi(times, opts);
  const auto r1 = s1.solve_multi(times, opts);
  const auto r10 = s10.solve_multi(times, opts);
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_NEAR(r0[i].weighted[1], r1[i].weighted[1], 1e-6);
    EXPECT_NEAR(r0[i].weighted[1], r10[i].weighted[1], 1e-6);
  }
}

TEST(PaperExampleTest, Figure3TransientMeanBelowSteadyStateLine) {
  // Starting all-OFF the available capacity starts at C = 32 per unit time
  // and decays towards the stationary rate; the transient mean therefore
  // lies ABOVE t * stationary_rate and below t * C.
  const auto model = table1_model(0.0);
  const auto pi_ss = ctmc::stationary_distribution_gth(model.generator());
  const double ss_rate = model.stationary_reward_rate(pi_ss);
  // Closed form: C - N r beta/(alpha+beta) = 32 - 32 * 3/7.
  EXPECT_NEAR(ss_rate, 32.0 - 32.0 * 3.0 / 7.0, 1e-9);

  const core::RandomizationMomentSolver solver(model);
  core::MomentSolverOptions opts;
  opts.max_moment = 1;
  opts.epsilon = 1e-10;
  for (double t : {0.1, 0.5, 1.0}) {
    const double mean = solver.solve(t, opts).weighted[1];
    EXPECT_GT(mean, ss_rate * t);
    EXPECT_LT(mean, 32.0 * t);
  }
}

TEST(PaperExampleTest, Figure4HigherMomentsGrowWithVariance) {
  core::MomentSolverOptions opts;
  opts.max_moment = 3;
  opts.epsilon = 1e-10;
  const double t = 0.5;
  double prev_m2 = -1.0, prev_m3 = -1.0;
  for (double s2 : {0.0, 1.0, 10.0}) {
    const core::RandomizationMomentSolver solver(table1_model(s2));
    const auto res = solver.solve(t, opts);
    EXPECT_GT(res.weighted[2], prev_m2);
    EXPECT_GT(res.weighted[3], prev_m3);
    prev_m2 = res.weighted[2];
    prev_m3 = res.weighted[3];
  }
}

TEST(PaperExampleTest, ThreeSolversAgreeOnTable1Model) {
  // The paper: randomization, an ODE solver and a simulator "gave exactly
  // the same results".
  const auto model = table1_model(1.0);
  const double t = 0.3;

  core::MomentSolverOptions ropts;
  ropts.epsilon = 1e-11;
  const core::RandomizationMomentSolver rand_solver(model);
  const auto rand_res = rand_solver.solve(t, ropts);

  core::OdeSolverOptions oopts;
  oopts.num_steps = 400;
  const auto ode_res =
      core::solve_moments_ode(model, t, core::OdeMethod::kRk4, oopts);
  for (std::size_t j = 1; j <= 3; ++j)
    EXPECT_NEAR(ode_res.weighted[j], rand_res.weighted[j],
                1e-6 * std::abs(rand_res.weighted[j]))
        << "moment " << j;

  const sim::Simulator simulator(model);
  sim::SimulationOptions sopts;
  sopts.num_replications = 40000;
  sopts.seed = 2024;
  const auto sim_res = simulator.estimate_moments(t, sopts);
  for (std::size_t j = 1; j <= 3; ++j)
    EXPECT_NEAR(sim_res.moments[j], rand_res.weighted[j],
                5.0 * sim_res.standard_errors[j])
        << "moment " << j;
}

TEST(PaperExampleTest, Figures5to7BoundsBracketSimulatedCdf) {
  // Bounds from 24 raw moments (the paper used 23 evaluated moments) must
  // bracket the empirical CDF of B(0.5) for each sigma^2.
  const double t = 0.5;
  for (double s2 : {0.0, 1.0, 10.0}) {
    const auto model = table1_model(s2);
    const core::RandomizationMomentSolver solver(model);

    // High-order moments must be computed centered: raw E[B^23] ~ 1e24
    // would lose the central information to cancellation (see the `center`
    // option). One cheap solve for the mean, then the centered batch.
    core::MomentSolverOptions mean_opts;
    mean_opts.max_moment = 1;
    mean_opts.epsilon = 1e-10;
    const double mean = solver.solve(t, mean_opts).weighted[1];

    core::MomentSolverOptions opts;
    opts.max_moment = 23;
    opts.epsilon = 1e-13;
    opts.center = mean / t;
    const auto res = solver.solve(t, opts);
    const bounds::MomentBounder bounder(res.weighted);

    const sim::Simulator simulator(model);
    auto samples = simulator.sample_rewards(t, 20000, 77);
    std::sort(samples.begin(), samples.end());

    const double sd = std::sqrt(core::variance_from_raw(res.weighted));
    for (double offset : {-2.0, -1.0, 0.0, 1.0, 2.0}) {
      const double x = mean + offset * sd;
      const auto b = bounder.bounds_at(x - mean);  // bounder sees B - mean
      const double ecdf = sim::empirical_cdf(samples, x, /*sorted=*/true);
      // 20k samples: allow ~4 sigma of binomial noise around the truth.
      const double noise = 4.0 * std::sqrt(0.25 / 20000.0);
      EXPECT_LE(b.lower, ecdf + noise)
          << "sigma2 " << s2 << " x " << x;
      EXPECT_GE(b.upper, ecdf - noise)
          << "sigma2 " << s2 << " x " << x;
    }
  }
}

TEST(PaperExampleTest, Figure7LargerVarianceWidensDistribution) {
  // With sigma^2 = 10 the distribution of B(0.5) is visibly wider than
  // with sigma^2 = 0 (Figures 5 vs 7).
  core::MomentSolverOptions opts;
  opts.max_moment = 2;
  opts.epsilon = 1e-11;
  const double t = 0.5;
  const auto v0 = core::variance_from_raw(
      core::RandomizationMomentSolver(table1_model(0.0)).solve(t, opts)
          .weighted);
  const auto v10 = core::variance_from_raw(
      core::RandomizationMomentSolver(table1_model(10.0)).solve(t, opts)
          .weighted);
  EXPECT_GT(v10, v0 + 1.0);
}

TEST(PaperExampleTest, MeanViaOccupancyIntegralOnTable1Model) {
  // Independent route to Figure 3: E[B(t)] = sum_i L_i(t) r_i with the
  // occupancy integrals of the uniformized chain.
  const auto model = table1_model(10.0);
  const core::RandomizationMomentSolver solver(model);
  core::MomentSolverOptions opts;
  opts.max_moment = 1;
  opts.epsilon = 1e-12;
  for (double t : {0.1, 0.5, 1.0}) {
    const auto occ = ctmc::expected_occupancy(model.generator(),
                                              model.initial(), t);
    const double via_occ = linalg::dot(occ, model.drifts());
    const double via_solver = solver.solve(t, opts).weighted[1];
    EXPECT_NEAR(via_occ, via_solver, 1e-8 * (1.0 + std::abs(via_solver)))
        << "t = " << t;
  }
}

TEST(PaperExampleTest, LargeQtRegimeStaysAccurate) {
  // A 2001-state slice of the Table-2 family with qt ~ 800: the log-space
  // Poisson machinery must keep the mean consistent with the occupancy
  // route and the variance positive.
  auto params = models::table2_params();
  params.num_sources = 2000;
  params.capacity = 2000.0;
  const auto model = models::make_onoff_multiplexer(params);
  const double t = 0.1;  // q = 8000 => qt = 800

  const core::RandomizationMomentSolver solver(model);
  core::MomentSolverOptions opts;
  opts.epsilon = 1e-9;
  const auto res = solver.solve(t, opts);
  EXPECT_GT(res.truncation_point, 800u);

  const auto occ = ctmc::expected_occupancy(model.generator(),
                                            model.initial(), t);
  EXPECT_NEAR(linalg::dot(occ, model.drifts()), res.weighted[1],
              1e-7 * res.weighted[1]);
  EXPECT_GT(core::variance_from_raw(res.weighted), 0.0);

  // Linear scaling fingerprint of Figure 8: the mean is (N/32) times the
  // Table-1 mean at the same alpha/beta (both models start all-OFF and the
  // per-source dynamics are identical).
  const auto small = table1_model(10.0);
  const double small_mean =
      core::RandomizationMomentSolver(small).solve(t, opts).weighted[1];
  EXPECT_NEAR(res.weighted[1] / small_mean, 2000.0 / 32.0,
              1e-6 * 2000.0 / 32.0);
}

TEST(PaperExampleTest, MachineRepairModelCrossSolverAgreement) {
  // A structurally different model family through the same pipeline.
  models::MachineRepairParams p;
  p.num_processors = 6;
  p.failure_rate = 0.4;
  p.repair_rate = 1.5;
  p.num_repairmen = 2;
  p.unit_power = 2.0;
  p.unit_power_variance = 0.5;
  const auto model = models::make_machine_repair(p);

  core::MomentSolverOptions ropts;
  ropts.epsilon = 1e-11;
  const auto rand_res =
      core::RandomizationMomentSolver(model).solve(1.0, ropts);

  core::OdeSolverOptions oopts;
  oopts.num_steps = 300;
  const auto ode_res =
      core::solve_moments_ode(model, 1.0, core::OdeMethod::kTrapezoid, oopts);
  for (std::size_t j = 1; j <= 3; ++j)
    EXPECT_NEAR(ode_res.weighted[j], rand_res.weighted[j],
                1e-4 * (1.0 + std::abs(rand_res.weighted[j])));
}

}  // namespace
}  // namespace somrm
