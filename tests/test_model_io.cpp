// Tests for the text model format: parsing, validation diagnostics with
// line numbers, and save/load round trips.

#include "io/model_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/impulse_randomization.hpp"
#include "core/randomization.hpp"

namespace somrm::io {
namespace {

ModelFile parse(const std::string& text) {
  std::istringstream in(text);
  return load_model(in);
}

constexpr const char* kBasicModel = R"(somrm-model v1
states 2
transition 0 1 2.0
transition 1 0 3.0
drift 0 1.5
drift 1 -0.5
variance 1 0.25
initial 0 1.0
)";

TEST(ModelIoTest, ParsesBasicModel) {
  const ModelFile f = parse(kBasicModel);
  EXPECT_EQ(f.model.num_states(), 2u);
  EXPECT_DOUBLE_EQ(f.model.generator().matrix().at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(f.model.generator().matrix().at(0, 0), -2.0);
  EXPECT_DOUBLE_EQ(f.model.drifts()[1], -0.5);
  EXPECT_DOUBLE_EQ(f.model.variances()[0], 0.0);
  EXPECT_DOUBLE_EQ(f.model.variances()[1], 0.25);
  EXPECT_FALSE(f.with_impulses.has_value());
}

TEST(ModelIoTest, CommentsAndBlankLinesIgnored) {
  const ModelFile f = parse(
      "somrm-model v1\n"
      "\n"
      "# a comment\n"
      "states 2   # trailing comment\n"
      "transition 0 1 1.0\n"
      "transition 1 0 1.0\n"
      "initial 1 1.0\n");
  EXPECT_EQ(f.model.num_states(), 2u);
  EXPECT_DOUBLE_EQ(f.model.initial()[1], 1.0);
}

TEST(ModelIoTest, ImpulseDirectivesProduceImpulseModel) {
  const ModelFile f = parse(
      "somrm-model v1\n"
      "states 2\n"
      "transition 0 1 1.0\n"
      "transition 1 0 1.0\n"
      "initial 0 1.0\n"
      "impulse 0 1 0.5 0.1\n"
      "impulse 1 0 -0.25\n");
  ASSERT_TRUE(f.with_impulses.has_value());
  EXPECT_DOUBLE_EQ(f.with_impulses->impulse_mean().at(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(f.with_impulses->impulse_var().at(0, 1), 0.1);
  EXPECT_DOUBLE_EQ(f.with_impulses->impulse_mean().at(1, 0), -0.25);
  EXPECT_DOUBLE_EQ(f.with_impulses->impulse_var().at(1, 0), 0.0);
}

TEST(ModelIoTest, ErrorsCarryLineNumbers) {
  const auto expect_error_at = [](const std::string& text, std::size_t line) {
    try {
      parse(text);
      FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
      EXPECT_EQ(e.line(), line) << e.what();
    }
  };

  expect_error_at("bogus\n", 1);  // missing header
  expect_error_at("somrm-model v2\n", 1);
  expect_error_at("somrm-model v1\ntransition 0 1 1.0\n", 2);  // before states
  expect_error_at("somrm-model v1\nstates 2\nstates 3\n", 3);
  expect_error_at("somrm-model v1\nstates 2\ntransition 0 5 1.0\n", 3);
  expect_error_at("somrm-model v1\nstates 2\ntransition 0 0 1.0\n", 3);
  expect_error_at("somrm-model v1\nstates 2\ntransition 0 1 -1.0\n", 3);
  expect_error_at("somrm-model v1\nstates 2\nvariance 0 -2.0\n", 3);
  expect_error_at("somrm-model v1\nstates 2\nfrobnicate 1\n", 3);
  expect_error_at("somrm-model v1\nstates 2\ndrift 0 1.0 extra\n", 3);
}

TEST(ModelIoTest, RejectsNonFiniteNumbers) {
  // "nan"/"inf" parse as doubles, so without an explicit guard they would
  // flow into the model and poison every downstream solve. Each numeric
  // field must reject them with a ParseError naming the line and field.
  const auto expect_non_finite_at = [](const std::string& text,
                                       std::size_t line) {
    try {
      parse(text);
      FAIL() << "expected ParseError for: " << text;
    } catch (const ParseError& e) {
      EXPECT_EQ(e.line(), line) << e.what();
      EXPECT_NE(std::string(e.what()).find("must be finite"),
                std::string::npos)
          << e.what();
    }
  };

  for (const char* token : {"nan", "-nan", "inf", "-inf"}) {
    const std::string v = token;
    expect_non_finite_at(
        "somrm-model v1\nstates 2\ntransition 0 1 " + v + "\n", 3);
    expect_non_finite_at("somrm-model v1\nstates 2\ndrift 0 " + v + "\n", 3);
    expect_non_finite_at(
        "somrm-model v1\nstates 2\nvariance 0 " + v + "\n", 3);
    expect_non_finite_at(
        "somrm-model v1\nstates 2\ninitial 0 " + v + "\n", 3);
    expect_non_finite_at(
        "somrm-model v1\nstates 2\ntransition 0 1 1.0\n"
        "transition 1 0 1.0\ninitial 0 1.0\nimpulse 0 1 " + v + "\n", 6);
    expect_non_finite_at(
        "somrm-model v1\nstates 2\ntransition 0 1 1.0\n"
        "transition 1 0 1.0\ninitial 0 1.0\nimpulse 0 1 0.5 " + v + "\n", 6);
  }
}

TEST(ModelIoTest, RejectsNegativeVarianceAtParseTime) {
  // Both the per-state variance and the optional impulse variance are
  // rejected by the parser itself (with the line), not later by the model.
  try {
    parse("somrm-model v1\nstates 2\nvariance 1 -0.25\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3u) << e.what();
  }
  try {
    parse(
        "somrm-model v1\nstates 2\ntransition 0 1 1.0\n"
        "transition 1 0 1.0\ninitial 0 1.0\nimpulse 0 1 0.5 -0.1\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 6u) << e.what();
  }
}

TEST(ModelIoTest, ModelInvariantsStillEnforced) {
  // Initial probabilities not summing to 1 fail at model construction.
  EXPECT_THROW(parse("somrm-model v1\n"
                     "states 2\n"
                     "transition 0 1 1.0\n"
                     "transition 1 0 1.0\n"
                     "initial 0 0.4\n"),
               std::invalid_argument);
  // Impulse without a matching transition fails impulse-model validation.
  EXPECT_THROW(parse("somrm-model v1\n"
                     "states 3\n"
                     "transition 0 1 1.0\n"
                     "transition 1 0 1.0\n"
                     "initial 0 1.0\n"
                     "impulse 0 2 1.0\n"),
               std::invalid_argument);
}

TEST(ModelIoTest, RoundTripPlainModel) {
  const ModelFile f = parse(kBasicModel);
  std::ostringstream out;
  save_model(out, f.model);
  const ModelFile g = parse(out.str());
  ASSERT_EQ(g.model.num_states(), f.model.num_states());
  EXPECT_EQ(g.model.drifts(), f.model.drifts());
  EXPECT_EQ(g.model.variances(), f.model.variances());
  EXPECT_EQ(g.model.initial(), f.model.initial());
  EXPECT_DOUBLE_EQ(g.model.generator().matrix().at(1, 0),
                   f.model.generator().matrix().at(1, 0));
}

TEST(ModelIoTest, RoundTripImpulseModelPreservesSolution) {
  const ModelFile f = parse(
      "somrm-model v1\n"
      "states 3\n"
      "transition 0 1 2.0\n"
      "transition 1 2 1.0\n"
      "transition 2 0 3.0\n"
      "drift 0 1.0\n"
      "drift 1 -2.0\n"
      "drift 2 0.5\n"
      "variance 0 0.3\n"
      "initial 0 1.0\n"
      "impulse 0 1 0.4 0.2\n"
      "impulse 2 0 -0.1\n");
  ASSERT_TRUE(f.with_impulses.has_value());

  std::ostringstream out;
  save_model(out, *f.with_impulses);
  const ModelFile g = parse(out.str());
  ASSERT_TRUE(g.with_impulses.has_value());

  core::MomentSolverOptions opts;
  opts.epsilon = 1e-12;
  const auto a = core::ImpulseMomentSolver(*f.with_impulses).solve(0.7, opts);
  const auto b = core::ImpulseMomentSolver(*g.with_impulses).solve(0.7, opts);
  for (std::size_t j = 0; j <= 3; ++j)
    EXPECT_DOUBLE_EQ(a.weighted[j], b.weighted[j]);
}

TEST(ModelIoTest, MissingFileReported) {
  EXPECT_THROW(load_model_file("/nonexistent/path/model.somrm"),
               std::runtime_error);
}

TEST(ModelIoTest, FileRoundTrip) {
  const ModelFile f = parse(kBasicModel);
  const std::string path = "/tmp/somrm_test_model.somrm";
  save_model_file(path, f.model);
  const ModelFile g = load_model_file(path);
  EXPECT_EQ(g.model.drifts(), f.model.drifts());
}

}  // namespace
}  // namespace somrm::io
