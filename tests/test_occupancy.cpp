// Tests for the expected-occupancy (integrated transient) solver.

#include "ctmc/occupancy.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/first_order.hpp"
#include "ctmc/transient.hpp"

namespace somrm::ctmc {
namespace {

using linalg::Triplet;
using linalg::Vec;

Generator two_state(double a, double b) {
  return Generator::from_rates(2,
                               std::vector<Triplet>{{0, 1, a}, {1, 0, b}});
}

TEST(OccupancyTest, TwoStateClosedForm) {
  // L_0(t) = int_0^t p_0(u) du with p_0(u) = b/(a+b) + a/(a+b) e^{-(a+b)u}.
  const double a = 2.0, b = 3.0;
  const Generator g = two_state(a, b);
  const Vec init{1.0, 0.0};
  for (double t : {0.1, 0.5, 2.0}) {
    const Vec occ = expected_occupancy(g, init, t);
    const double s = a + b;
    const double expected0 =
        b / s * t + a / (s * s) * (1.0 - std::exp(-s * t));
    EXPECT_NEAR(occ[0], expected0, 1e-10) << "t = " << t;
    EXPECT_NEAR(occ[0] + occ[1], t, 1e-10);
  }
}

TEST(OccupancyTest, SumsToTime) {
  const std::vector<Triplet> rates{{0, 1, 1.0}, {1, 2, 2.0}, {2, 0, 0.5},
                                   {2, 1, 0.25}};
  const Generator g = Generator::from_rates(3, rates);
  const Vec init{0.2, 0.5, 0.3};
  for (double t : {0.0, 0.3, 1.7, 10.0}) {
    const Vec occ = expected_occupancy(g, init, t);
    EXPECT_NEAR(linalg::sum(occ), t, 1e-9 * (1.0 + t)) << "t = " << t;
    EXPECT_TRUE(linalg::is_nonnegative(occ, 1e-12));
  }
}

TEST(OccupancyTest, MatchesFirstOrderMeanReward) {
  // E[B(t)] = sum_i L_i(t) r_i — the independent route to the mean.
  const std::vector<Triplet> rates{{0, 1, 2.0}, {1, 0, 1.0}, {1, 2, 1.5},
                                   {2, 1, 3.0}};
  const Generator g = Generator::from_rates(3, rates);
  const Vec rewards{4.0, 1.0, -0.5};
  const Vec init{1.0, 0.0, 0.0};
  const core::FirstOrderMrm mrm(g, rewards, init);
  const core::FirstOrderMomentSolver solver(mrm);

  core::MomentSolverOptions opts;
  opts.max_moment = 1;
  opts.epsilon = 1e-12;
  for (double t : {0.2, 1.0, 3.0}) {
    const Vec occ = expected_occupancy(g, init, t);
    const double via_occupancy = linalg::dot(occ, rewards);
    const double via_solver = solver.solve(t, opts).weighted[1];
    EXPECT_NEAR(via_occupancy, via_solver, 1e-9 * (1.0 + std::abs(via_solver)))
        << "t = " << t;
  }
}

TEST(OccupancyTest, AbsorbingChainAccumulatesInInitialStates) {
  const Generator g = Generator::from_rates(3, std::vector<Triplet>{});
  const Vec init{0.5, 0.25, 0.25};
  const Vec occ = expected_occupancy(g, init, 4.0);
  EXPECT_NEAR(occ[0], 2.0, 1e-12);
  EXPECT_NEAR(occ[1], 1.0, 1e-12);
  EXPECT_NEAR(occ[2], 1.0, 1e-12);
}

TEST(OccupancyTest, LongHorizonApproachesStationaryShare) {
  const double a = 2.0, b = 3.0;
  const Generator g = two_state(a, b);
  const double t = 200.0;
  const Vec occ = expected_occupancy(g, Vec{1.0, 0.0}, t);
  EXPECT_NEAR(occ[0] / t, b / (a + b), 1e-3);
}

TEST(OccupancyTest, MultiTimeMatchesSingle) {
  const Generator g = two_state(1.0, 4.0);
  const Vec init{0.5, 0.5};
  const std::vector<double> times{0.1, 0.9, 2.5};
  const auto multi = expected_occupancy_multi(g, init, times);
  for (std::size_t i = 0; i < times.size(); ++i) {
    const Vec single = expected_occupancy(g, init, times[i]);
    EXPECT_NEAR(multi[i][0], single[0], 1e-11);
    EXPECT_NEAR(multi[i][1], single[1], 1e-11);
  }
}

TEST(OccupancyTest, InputValidation) {
  const Generator g = two_state(1.0, 1.0);
  EXPECT_THROW(expected_occupancy(g, Vec{1.0}, 1.0), std::invalid_argument);
  EXPECT_THROW(expected_occupancy(g, Vec{1.0, 0.0}, -1.0),
               std::invalid_argument);
  OccupancyOptions bad;
  bad.epsilon = 0.0;
  EXPECT_THROW(expected_occupancy(g, Vec{1.0, 0.0}, 1.0, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace somrm::ctmc
