// Tests for normal-distribution utilities.

#include "prob/normal.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace somrm::prob {
namespace {

TEST(NormalPdfTest, StandardNormalAtZero) {
  EXPECT_NEAR(normal_pdf(0.0, 0.0, 1.0),
              1.0 / std::sqrt(2.0 * std::numbers::pi), 1e-15);
}

TEST(NormalPdfTest, SymmetryAndScaling) {
  EXPECT_NEAR(normal_pdf(1.3, 0.0, 1.0), normal_pdf(-1.3, 0.0, 1.0), 1e-16);
  // pdf of N(mu, s^2) at mu equals pdf of N(0,1) at 0 divided by s.
  EXPECT_NEAR(normal_pdf(2.0, 2.0, 4.0),
              normal_pdf(0.0, 0.0, 1.0) / 2.0, 1e-15);
}

TEST(NormalPdfTest, RejectsNonPositiveVariance) {
  EXPECT_THROW(normal_pdf(0.0, 0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(normal_pdf(0.0, 0.0, -1.0), std::invalid_argument);
}

TEST(NormalCdfTest, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0, 0.0, 1.0), 0.5, 1e-15);
  EXPECT_NEAR(normal_cdf(1.959963984540054, 0.0, 1.0), 0.975, 1e-12);
  EXPECT_NEAR(normal_cdf(-1.959963984540054, 0.0, 1.0), 0.025, 1e-12);
}

TEST(NormalCdfTest, DegenerateVarianceIsStepFunction) {
  EXPECT_DOUBLE_EQ(normal_cdf(0.9, 1.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(normal_cdf(1.0, 1.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(normal_cdf(1.1, 1.0, 0.0), 1.0);
}

TEST(QuantileTest, InvertsTheCdf) {
  for (double p : {1e-10, 1e-4, 0.025, 0.3, 0.5, 0.7, 0.975, 1.0 - 1e-4}) {
    const double x = standard_normal_quantile(p);
    EXPECT_NEAR(normal_cdf(x, 0.0, 1.0), p, 1e-12) << "p = " << p;
  }
}

TEST(QuantileTest, MedianIsZero) {
  EXPECT_NEAR(standard_normal_quantile(0.5), 0.0, 1e-14);
}

TEST(QuantileTest, RejectsBoundaryProbabilities) {
  EXPECT_THROW(standard_normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW(standard_normal_quantile(1.0), std::invalid_argument);
  EXPECT_THROW(standard_normal_quantile(-0.1), std::invalid_argument);
}

TEST(NormalMomentsTest, StandardNormalMomentsAreDoubleFactorials) {
  const auto m = normal_raw_moments(0.0, 1.0, 8);
  EXPECT_DOUBLE_EQ(m[0], 1.0);
  EXPECT_DOUBLE_EQ(m[1], 0.0);
  EXPECT_DOUBLE_EQ(m[2], 1.0);
  EXPECT_DOUBLE_EQ(m[3], 0.0);
  EXPECT_DOUBLE_EQ(m[4], 3.0);
  EXPECT_DOUBLE_EQ(m[5], 0.0);
  EXPECT_DOUBLE_EQ(m[6], 15.0);
  EXPECT_DOUBLE_EQ(m[8], 105.0);
}

TEST(NormalMomentsTest, PureDriftGivesPowers) {
  const auto m = normal_raw_moments(2.0, 0.0, 4);
  EXPECT_DOUBLE_EQ(m[1], 2.0);
  EXPECT_DOUBLE_EQ(m[2], 4.0);
  EXPECT_DOUBLE_EQ(m[3], 8.0);
  EXPECT_DOUBLE_EQ(m[4], 16.0);
}

TEST(NormalMomentsTest, GeneralMeanVarianceSecondMoment) {
  const double mu = 1.5, s2 = 2.25;
  const auto m = normal_raw_moments(mu, s2, 4);
  EXPECT_NEAR(m[2], s2 + mu * mu, 1e-14);
  EXPECT_NEAR(m[3], mu * mu * mu + 3.0 * mu * s2, 1e-13);
  EXPECT_NEAR(m[4], mu * mu * mu * mu + 6.0 * mu * mu * s2 + 3.0 * s2 * s2,
              1e-12);
}

TEST(BrownianMomentsTest, MatchesNormalWithScaledParameters) {
  const auto bm = brownian_raw_moments(1.0, 4.0, 0.25, 3);
  const auto nm = normal_raw_moments(0.25, 1.0, 3);
  for (std::size_t k = 0; k <= 3; ++k) EXPECT_DOUBLE_EQ(bm[k], nm[k]);
}

TEST(BrownianMomentsTest, RejectsNegativeTime) {
  EXPECT_THROW(brownian_raw_moments(1.0, 1.0, -0.5, 2), std::invalid_argument);
}

}  // namespace
}  // namespace somrm::prob
