// Tests for the Thomas solver and the symmetric tridiagonal eigensolver.

#include "linalg/tridiag.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace somrm::linalg {
namespace {

TEST(ThomasTest, SolvesDiagonallyDominantSystem) {
  // A = tridiag(-1, 4, -1), n = 5.
  const std::size_t n = 5;
  std::vector<double> lower(n, -1.0), diag(n, 4.0), upper(n, -1.0);
  std::vector<double> x_true{1.0, -1.0, 2.0, 0.5, 3.0};
  std::vector<double> rhs(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    rhs[i] = diag[i] * x_true[i];
    if (i > 0) rhs[i] += lower[i] * x_true[i - 1];
    if (i + 1 < n) rhs[i] += upper[i] * x_true[i + 1];
  }
  const auto x = solve_tridiagonal(lower, diag, upper, rhs);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-12);
}

TEST(ThomasTest, SingleEquation) {
  const auto x = solve_tridiagonal(std::vector<double>{0.0},
                                   std::vector<double>{2.0},
                                   std::vector<double>{0.0},
                                   std::vector<double>{6.0});
  ASSERT_EQ(x.size(), 1u);
  EXPECT_DOUBLE_EQ(x[0], 3.0);
}

TEST(ThomasTest, ThrowsOnZeroPivot) {
  EXPECT_THROW(solve_tridiagonal(std::vector<double>{0.0, 0.0},
                                 std::vector<double>{0.0, 1.0},
                                 std::vector<double>{0.0, 0.0},
                                 std::vector<double>{1.0, 1.0}),
               std::runtime_error);
}

TEST(ThomasTest, SizeMismatchRejected) {
  EXPECT_THROW(solve_tridiagonal(std::vector<double>{0.0},
                                 std::vector<double>{1.0, 1.0},
                                 std::vector<double>{0.0, 0.0},
                                 std::vector<double>{1.0, 1.0}),
               std::invalid_argument);
}

TEST(TridiagEigenTest, DiagonalMatrixReturnsSortedDiagonal) {
  auto eig = symmetric_tridiagonal_eigen<double>({3.0, 1.0, 2.0},
                                                 {0.0, 0.0});
  ASSERT_EQ(eig.eigenvalues.size(), 3u);
  EXPECT_NEAR(eig.eigenvalues[0], 1.0, 1e-14);
  EXPECT_NEAR(eig.eigenvalues[1], 2.0, 1e-14);
  EXPECT_NEAR(eig.eigenvalues[2], 3.0, 1e-14);
}

TEST(TridiagEigenTest, TwoByTwoClosedForm) {
  // [a b; b c]: eigenvalues (a+c)/2 +- sqrt(((a-c)/2)^2 + b^2).
  const double a = 2.0, b = 0.7, c = -1.0;
  auto eig = symmetric_tridiagonal_eigen<double>({a, c}, {b});
  const double mid = (a + c) / 2.0;
  const double rad = std::sqrt((a - c) * (a - c) / 4.0 + b * b);
  ASSERT_EQ(eig.eigenvalues.size(), 2u);
  EXPECT_NEAR(eig.eigenvalues[0], mid - rad, 1e-13);
  EXPECT_NEAR(eig.eigenvalues[1], mid + rad, 1e-13);
}

TEST(TridiagEigenTest, LaplacianEigenvaluesMatchClosedForm) {
  // tridiag(-1, 2, -1) of order n has eigenvalues 2 - 2 cos(k pi/(n+1)).
  const std::size_t n = 12;
  auto eig = symmetric_tridiagonal_eigen<double>(
      std::vector<double>(n, 2.0), std::vector<double>(n - 1, -1.0));
  for (std::size_t k = 1; k <= n; ++k) {
    const double expected =
        2.0 - 2.0 * std::cos(static_cast<double>(k) * std::numbers::pi /
                             static_cast<double>(n + 1));
    EXPECT_NEAR(eig.eigenvalues[k - 1], expected, 1e-12);
  }
}

TEST(TridiagEigenTest, FirstComponentsSquareToOneTotal) {
  // The first components are row 0 of an orthogonal matrix: their squares
  // sum to 1. This is exactly the property Golub-Welsch weights rely on.
  auto eig = symmetric_tridiagonal_eigen<double>({1.0, 2.0, 3.0, 4.0},
                                                 {0.5, 0.25, 0.75});
  double total = 0.0;
  for (double f : eig.first_components) total += f * f;
  EXPECT_NEAR(total, 1.0, 1e-13);
}

TEST(TridiagEigenTest, LongDoubleVariantAgreesWithDouble) {
  const std::vector<double> d{1.0, -0.5, 2.0};
  const std::vector<double> e{0.3, 0.9};
  auto eig_d = symmetric_tridiagonal_eigen<double>(
      std::vector<double>(d), std::vector<double>(e));
  auto eig_l = symmetric_tridiagonal_eigen<long double>(
      std::vector<long double>(d.begin(), d.end()),
      std::vector<long double>(e.begin(), e.end()));
  for (std::size_t k = 0; k < 3; ++k)
    EXPECT_NEAR(eig_d.eigenvalues[k],
                static_cast<double>(eig_l.eigenvalues[k]), 1e-13);
}

TEST(TridiagEigenTest, GershgorinBoundHolds) {
  // Hermite-like Jacobi matrix (standard normal): diag 0, offdiag sqrt(k).
  const std::size_t m = 8;
  std::vector<double> diag(m, 0.0), off(m - 1);
  for (std::size_t k = 0; k < m - 1; ++k)
    off[k] = std::sqrt(static_cast<double>(k + 1));
  auto eig = symmetric_tridiagonal_eigen<double>(std::move(diag),
                                                 std::move(off));
  // Nodes of Gauss-Hermite (probabilists') are symmetric around zero.
  for (std::size_t k = 0; k < m / 2; ++k)
    EXPECT_NEAR(eig.eigenvalues[k], -eig.eigenvalues[m - 1 - k], 1e-11);
}

TEST(TridiagEigenTest, RejectsBadOffdiagSize) {
  EXPECT_THROW(
      symmetric_tridiagonal_eigen<double>({1.0, 2.0}, {0.1, 0.2}),
      std::invalid_argument);
}

}  // namespace
}  // namespace somrm::linalg
