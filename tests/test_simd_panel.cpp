// Bit-identity tests for the SIMD panel row kernels (linalg/simd.hpp).
//
// The SOMRM_NATIVE contract: every compiled-in vector level produces output
// bit-identical to the scalar reference — per panel column the vector
// kernels execute the scalar multiply-then-add chain in the same order, so
// EXPECT_EQ on doubles is the correct assertion, not EXPECT_NEAR. In
// portable builds highest_supported() is kScalar and the level loop
// degrades to a scalar self-check; the NATIVE CI job runs the real matrix
// of (level × width × thread count) comparisons.

#include "linalg/simd.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "linalg/csr.hpp"
#include "linalg/panel.hpp"
#include "linalg/parallel.hpp"

namespace somrm::linalg {
namespace {

CsrMatrix lcg_matrix(std::size_t rows, std::size_t cols,
                     std::size_t nnz_per_row) {
  CsrBuilder b(rows, cols);
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t k = 0; k < nnz_per_row; ++k) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      const std::size_t j = (state >> 33) % cols;
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      b.add(i, j, (static_cast<double>((state >> 33) % 1999) - 999.0) / 311.0);
    }
  return std::move(b).build();
}

Panel lcg_panel(std::size_t rows, std::size_t width) {
  Panel p(rows, width);
  std::uint64_t state = 0x2545f4914f6cdd1dull;
  for (std::size_t i = 0; i < p.size(); ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    p.data()[i] = (static_cast<double>((state >> 33) % 4001) - 2000.0) / 919.0;
  }
  return p;
}

std::vector<simd::Level> compiled_levels() {
  std::vector<simd::Level> levels{simd::Level::kScalar};
  const int top = static_cast<int>(simd::highest_supported());
  if (top >= static_cast<int>(simd::Level::kAvx2))
    levels.push_back(simd::Level::kAvx2);
  if (top >= static_cast<int>(simd::Level::kAvx512))
    levels.push_back(simd::Level::kAvx512);
  return levels;
}

/// Restores the auto dispatch level and the default thread count however a
/// test exits, so level/thread overrides cannot leak across tests.
class SimdPanelTest : public ::testing::Test {
 protected:
  void TearDown() override {
    simd::set_level(simd::highest_supported());
    set_num_threads(0);
  }
};

TEST_F(SimdPanelTest, LevelClampsToSupportAndRoundTrips) {
  simd::set_level(simd::Level::kAvx512);
  EXPECT_LE(static_cast<int>(simd::active_level()),
            static_cast<int>(simd::highest_supported()));
  simd::set_level(simd::Level::kScalar);
  EXPECT_EQ(simd::active_level(), simd::Level::kScalar);
  EXPECT_EQ(simd::panel_rows_kernel(), nullptr)
      << "scalar level must fall through to the reference kernels";
#if !SOMRM_NATIVE
  EXPECT_EQ(simd::highest_supported(), simd::Level::kScalar)
      << "portable builds must not compile vector kernels in";
#endif
  EXPECT_STREQ(simd::level_name(simd::Level::kScalar), "scalar");
  EXPECT_STREQ(simd::level_name(simd::Level::kAvx2), "avx2");
  EXPECT_STREQ(simd::level_name(simd::Level::kAvx512), "avx512");
}

TEST_F(SimdPanelTest, PanelProductBitIdenticalAcrossLevelsWidthsThreads) {
  const std::size_t n = 3000;
  const CsrMatrix m = lcg_matrix(n, n, 7);
  // Widths 1..8 hit every fixed-width kernel (and every AVX2/AVX-512 tail
  // mask); 24 is the widest solver panel (bounds pipeline); 33 exceeds the
  // 32-column chunk, forcing the chunk loop plus a width-1 tail pass.
  const std::size_t widths[] = {1, 2, 3, 4, 5, 6, 7, 8, 24, 33};
  for (std::size_t width : widths) {
    const Panel x = lcg_panel(n, width);
    simd::set_level(simd::Level::kScalar);
    set_num_threads(1);
    Panel reference(n, width);
    m.multiply_panel(x, reference);
    for (simd::Level level : compiled_levels()) {
      simd::set_level(level);
      for (std::size_t threads : {1u, 2u, 4u, 8u}) {
        set_num_threads(threads);
        Panel y(n, width);
        m.multiply_panel(x, y);
        for (std::size_t i = 0; i < y.size(); ++i)
          ASSERT_EQ(y.data()[i], reference.data()[i])
              << "width " << width << " level " << simd::level_name(level)
              << " threads " << threads << " flat index " << i;
      }
    }
  }
}

TEST_F(SimdPanelTest, WindowedAccumulateBitIdenticalAndOutsideUntouched) {
  // multiply_panel_rows with a column window (the fused sweep's shape):
  // src/dst offsets differ, accumulate=true, and only a row subrange runs.
  // The vector kernels' masked stores must leave everything outside the
  // window — columns below dst_col, past dst_col+count, rows outside the
  // range — exactly as it was.
  const std::size_t n = 1024;
  const CsrMatrix m = lcg_matrix(n, n, 5);
  const Panel x = lcg_panel(n, 10);
  const Panel seed = lcg_panel(n, 12);
  const std::size_t row_begin = 100, row_end = 900;
  const std::size_t src_col = 1, dst_col = 2, count = 7;

  simd::set_level(simd::Level::kScalar);
  Panel reference = seed;
  m.multiply_panel_rows(x, reference, row_begin, row_end, src_col, dst_col,
                        count, /*accumulate=*/true);

  for (simd::Level level : compiled_levels()) {
    simd::set_level(level);
    Panel y = seed;
    m.multiply_panel_rows(x, y, row_begin, row_end, src_col, dst_col, count,
                          /*accumulate=*/true);
    for (std::size_t i = 0; i < y.size(); ++i)
      ASSERT_EQ(y.data()[i], reference.data()[i])
          << "level " << simd::level_name(level) << " flat index " << i;
    // Independently confirm the untouched region against the seed (the
    // scalar reference could in principle share a bug with the vector
    // kernels; the seed cannot).
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < 12; ++c) {
        const bool inside = r >= row_begin && r < row_end && c >= dst_col &&
                            c < dst_col + count;
        if (!inside) {
          ASSERT_EQ(y(r, c), seed(r, c))
              << "level " << simd::level_name(level) << " row " << r
              << " col " << c;
        }
      }
  }
}

TEST_F(SimdPanelTest, EmptyRowsAndEmptyRangeAreHandled) {
  // Rows with no stored entries must still write zeros (assign mode), and a
  // zero-length row range must be a no-op, at every compiled level.
  CsrBuilder b(6, 6);
  b.add(0, 1, 2.0);
  b.add(3, 0, -1.5);
  b.add(3, 5, 4.0);
  const CsrMatrix m = std::move(b).build();
  const Panel x = lcg_panel(6, 3);
  for (simd::Level level : compiled_levels()) {
    simd::set_level(level);
    Panel y(6, 3);
    for (std::size_t i = 0; i < y.size(); ++i) y.data()[i] = 99.0;
    m.multiply_panel_rows(x, y, 0, 6, 0, 0, 3, /*accumulate=*/false);
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(y(1, c), 0.0) << simd::level_name(level);
      EXPECT_EQ(y(5, c), 0.0) << simd::level_name(level);
    }
    Panel z = y;
    m.multiply_panel_rows(x, z, 4, 4, 0, 0, 3, /*accumulate=*/true);
    for (std::size_t i = 0; i < z.size(); ++i)
      EXPECT_EQ(z.data()[i], y.data()[i]) << simd::level_name(level);
  }
}

}  // namespace
}  // namespace somrm::linalg
