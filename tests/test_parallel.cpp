// Tests for the row-range parallelism utility. The load-bearing properties:
//  * partition_ranges tiles [0, total) exactly — every index covered once,
//    ranges ascending, sizes balanced to within one — deterministically;
//  * parallel_for visits every index exactly once for any thread count and
//    grain, including the degenerate and nested cases;
//  * exceptions from the body surface on the calling thread;
//  * the thread-count override round-trips and 0 restores the default.

#include "linalg/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "linalg/csr.hpp"
#include "linalg/panel.hpp"

namespace somrm::linalg {
namespace {

TEST(PartitionRangesTest, TilesExactlyOnce) {
  for (std::size_t total : {0u, 1u, 2u, 7u, 64u, 1000u, 1023u, 1025u}) {
    for (std::size_t parts : {1u, 2u, 3u, 4u, 7u, 64u, 2000u}) {
      const auto ranges = partition_ranges(total, parts);
      std::vector<int> hits(total, 0);
      std::size_t expected_begin = 0;
      for (const IndexRange& r : ranges) {
        EXPECT_EQ(r.begin, expected_begin);  // ascending, gap-free
        EXPECT_LT(r.begin, r.end);           // non-empty
        for (std::size_t i = r.begin; i < r.end; ++i) ++hits[i];
        expected_begin = r.end;
      }
      EXPECT_EQ(expected_begin, total) << total << "/" << parts;
      for (std::size_t i = 0; i < total; ++i)
        EXPECT_EQ(hits[i], 1) << "index " << i;
    }
  }
}

TEST(PartitionRangesTest, BalancedToWithinOne) {
  const auto ranges = partition_ranges(1000, 7);
  ASSERT_EQ(ranges.size(), 7u);
  std::size_t lo = ranges[0].size(), hi = ranges[0].size();
  for (const IndexRange& r : ranges) {
    lo = std::min(lo, r.size());
    hi = std::max(hi, r.size());
  }
  EXPECT_LE(hi - lo, 1u);
}

TEST(PartitionRangesTest, FewerPartsThanRequestedOnlyWhenShort) {
  EXPECT_EQ(partition_ranges(3, 8).size(), 3u);
  EXPECT_EQ(partition_ranges(8, 8).size(), 8u);
  EXPECT_TRUE(partition_ranges(0, 4).empty());
}

TEST(PartitionRangesTest, Deterministic) {
  const auto a = partition_ranges(12345, 4);
  const auto b = partition_ranges(12345, 4);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].begin, b[i].begin);
    EXPECT_EQ(a[i].end, b[i].end);
  }
}

class ParallelForThreadsTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  void SetUp() override { set_num_threads(GetParam()); }
  void TearDown() override { set_num_threads(0); }
};

TEST_P(ParallelForThreadsTest, CoversEveryIndexExactlyOnce) {
  for (std::size_t total : {0u, 1u, 5u, 1024u, 5000u}) {
    std::vector<std::atomic<int>> hits(total);
    for (auto& h : hits) h.store(0);
    parallel_for(
        total,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i)
            hits[i].fetch_add(1, std::memory_order_relaxed);
        },
        /*grain=*/64);
    for (std::size_t i = 0; i < total; ++i)
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " total " << total;
  }
}

TEST_P(ParallelForThreadsTest, NestedCallRunsInlineAndCovers) {
  const std::size_t total = 512;
  std::vector<std::atomic<int>> hits(total);
  for (auto& h : hits) h.store(0);
  parallel_for(
      total,
      [&](std::size_t begin, std::size_t end) {
        // A body that itself calls parallel_for (as the fused kernel does
        // through CsrMatrix::multiply) must not deadlock or double-visit.
        parallel_for(
            end - begin,
            [&](std::size_t b2, std::size_t e2) {
              for (std::size_t i = b2; i < e2; ++i)
                hits[begin + i].fetch_add(1, std::memory_order_relaxed);
            },
            /*grain=*/16);
      },
      /*grain=*/16);
  for (std::size_t i = 0; i < total; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST_P(ParallelForThreadsTest, ExceptionPropagatesToCaller) {
  EXPECT_THROW(
      parallel_for(
          4096,
          [&](std::size_t begin, std::size_t) {
            if (begin == 0) throw std::runtime_error("boom");
          },
          /*grain=*/1),
      std::runtime_error);
  // The pool must stay usable after a throwing job.
  std::atomic<std::size_t> count{0};
  parallel_for(
      1000,
      [&](std::size_t begin, std::size_t end) {
        count.fetch_add(end - begin, std::memory_order_relaxed);
      },
      /*grain=*/64);
  EXPECT_EQ(count.load(), 1000u);
}

// Deterministic pseudo-random matrix/panel builders (LCG) for the kernel
// thread-invariance checks below.
CsrMatrix lcg_matrix(std::size_t rows, std::size_t cols,
                     std::size_t nnz_per_row) {
  CsrBuilder b(rows, cols);
  std::uint64_t state = 0xdeadbeefcafef00dull;
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t k = 0; k < nnz_per_row; ++k) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      const std::size_t j = (state >> 33) % cols;
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      b.add(i, j, (static_cast<double>((state >> 33) % 1999) - 999.0) / 311.0);
    }
  return std::move(b).build();
}

Panel lcg_panel(std::size_t rows, std::size_t width) {
  Panel p(rows, width);
  std::uint64_t state = 0x1234567890abcdefull;
  for (std::size_t i = 0; i < p.size(); ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    p.data()[i] = (static_cast<double>((state >> 33) % 4001) - 2000.0) / 919.0;
  }
  return p;
}

TEST_P(ParallelForThreadsTest, MultiplyPanelBitIdenticalAcrossThreadCounts) {
  // 5000 rows at width 5 crosses the SpMM grain (4096 / width), so the
  // thread sweep genuinely changes the parallel split. Row-owned writes +
  // deterministic per-row accumulation order => EXPECT_EQ, not NEAR.
  const CsrMatrix m = lcg_matrix(5000, 5000, 6);
  const Panel x = lcg_panel(5000, 5);

  set_num_threads(1);
  Panel reference(5000, 5);
  m.multiply_panel(x, reference);

  set_num_threads(GetParam());
  Panel y(5000, 5);
  m.multiply_panel(x, y);

  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_EQ(y.data()[i], reference.data()[i]) << "flat index " << i;
}

TEST_P(ParallelForThreadsTest,
       MultiplyTransposedBitIdenticalAcrossThreadCounts) {
  // 5000 rows crosses the serial-scatter cutoff (4096), so the blocked
  // partial-buffer path runs. The row partition is a fixed 8-way split and
  // the reduction a fixed pairwise tree — both independent of the thread
  // count — so the result must be bit-identical for 1/2/4/8 threads.
  const CsrMatrix m = lcg_matrix(5000, 700, 4);
  const Vec x = lcg_panel(5000, 1).col(0);

  set_num_threads(1);
  Vec reference(700, 0.0);
  m.multiply_transposed(x, reference);

  set_num_threads(GetParam());
  Vec y(700, 0.0);
  m.multiply_transposed(x, y);

  for (std::size_t c = 0; c < y.size(); ++c)
    ASSERT_EQ(y[c], reference[c]) << "col " << c;
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelForThreadsTest,
                         ::testing::Values<std::size_t>(1, 2, 4, 8));

TEST(ParallelForTest, ZeroTotalNeverInvokesBody) {
  bool called = false;
  parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

// Regression for the pool-retirement race: set_num_threads used to reset
// the worker pool while another thread could still be inside
// ThreadPool::run — a use-after-free once solves go concurrent
// (SolveSession serving). The pool is now reference-counted, so in-flight
// jobs keep their pool alive and retirement joins the old workers only
// after the last of them returns. This test hammers set_num_threads
// against concurrent panel products; under TSan (CI sanitize matrix) the
// old code reports the race, and in any build the results must still be
// bit-identical to the serial reference (the kernels are thread-count
// invariant, so even a mid-job override cannot change values).
TEST(ParallelForRaceTest, SetNumThreadsConcurrentWithJobsIsSafe) {
  const CsrMatrix m = lcg_matrix(6000, 6000, 5);
  const Panel x = lcg_panel(6000, 4);
  set_num_threads(1);
  Panel reference(6000, 4);
  m.multiply_panel(x, reference);

  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  auto solver_loop = [&] {
    Panel y(6000, 4);
    for (int iter = 0; iter < 40; ++iter) {
      m.multiply_panel(x, y);
      for (std::size_t i = 0; i < y.size(); ++i)
        if (y.data()[i] != reference.data()[i]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
          break;
        }
    }
  };
  std::thread hammer([&] {
    std::size_t k = 0;
    while (!stop.load(std::memory_order_relaxed))
      set_num_threads(1 + (k++ % 8));
  });
  std::thread solver_a(solver_loop);
  std::thread solver_b(solver_loop);
  solver_a.join();
  solver_b.join();
  stop.store(true, std::memory_order_relaxed);
  hammer.join();
  set_num_threads(0);
  EXPECT_EQ(mismatches.load(), 0);

  // The pool must be fully usable after the hammering stops.
  std::atomic<std::size_t> count{0};
  parallel_for(
      2048,
      [&](std::size_t begin, std::size_t end) {
        count.fetch_add(end - begin, std::memory_order_relaxed);
      },
      /*grain=*/64);
  EXPECT_EQ(count.load(), 2048u);
}

TEST(ParallelForRaceTest, ConcurrentSubmittersGetTheirOwnBodies) {
  // Regression test: a pool worker finishing the tail of one job used to
  // re-read the shared body pointer unlocked, racing the next submitter's
  // publication of a different body (annotation-revealed; the pointer is
  // now snapshotted under the job mutex). Several threads submit distinct
  // bodies back to back; each must observe exactly its own body's effect.
  set_num_threads(4);
  constexpr int kSubmitters = 4;
  constexpr int kIters = 200;
  constexpr std::size_t kTotal = 4096;
  std::atomic<int> wrong_sums{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t)
    submitters.emplace_back([&, t] {
      // Submitter t's body adds (t + 1) per index; the job total must be
      // exactly (t + 1) * kTotal every iteration.
      for (int iter = 0; iter < kIters; ++iter) {
        std::atomic<std::uint64_t> sum{0};
        parallel_for(
            kTotal,
            [&sum, t](std::size_t begin, std::size_t end) {
              sum.fetch_add(static_cast<std::uint64_t>(t + 1) * (end - begin),
                            std::memory_order_relaxed);
            },
            /*grain=*/64);
        if (sum.load() != static_cast<std::uint64_t>(t + 1) * kTotal)
          wrong_sums.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (std::thread& t : submitters) t.join();
  set_num_threads(0);
  EXPECT_EQ(wrong_sums.load(), 0);
}

TEST(NumThreadsTest, OverrideRoundTripsAndZeroRestoresDefault) {
  const std::size_t def = default_num_threads();
  EXPECT_GE(def, 1u);
  set_num_threads(3);
  EXPECT_EQ(num_threads(), 3u);
  set_num_threads(0);
  EXPECT_EQ(num_threads(), def);
}

}  // namespace
}  // namespace somrm::linalg
