// Tests for the model builders: ON-OFF multiplexer (Figure 2 / Tables 1-2),
// general birth-death, and the machine-repair reliability model.

#include <gtest/gtest.h>

#include <cmath>

#include "models/birth_death.hpp"
#include "models/onoff.hpp"
#include "models/reliability.hpp"

namespace somrm::models {
namespace {

TEST(OnOffTest, Table1StructureMatchesFigure2) {
  const auto model = make_onoff_multiplexer(table1_params(10.0));
  EXPECT_EQ(model.num_states(), 33u);

  const auto& q = model.generator().matrix();
  // q_{i,i+1} = (N-i) beta, q_{i,i-1} = i alpha.
  EXPECT_DOUBLE_EQ(q.at(0, 1), 32.0 * 3.0);
  EXPECT_DOUBLE_EQ(q.at(1, 2), 31.0 * 3.0);
  EXPECT_DOUBLE_EQ(q.at(1, 0), 1.0 * 4.0);
  EXPECT_DOUBLE_EQ(q.at(32, 31), 32.0 * 4.0);
  EXPECT_DOUBLE_EQ(q.at(0, 0), -(32.0 * 3.0));

  // Uniformization rate: max exit rate is N*alpha = 128 at state N.
  EXPECT_DOUBLE_EQ(model.generator().uniformization_rate(), 128.0);

  // Rewards: r_i = C - i r, sigma_i^2 = i sigma^2.
  EXPECT_DOUBLE_EQ(model.drifts()[0], 32.0);
  EXPECT_DOUBLE_EQ(model.drifts()[32], 0.0);
  EXPECT_DOUBLE_EQ(model.variances()[0], 0.0);
  EXPECT_DOUBLE_EQ(model.variances()[10], 100.0);

  // All sources OFF at t = 0.
  EXPECT_DOUBLE_EQ(model.initial()[0], 1.0);
}

TEST(OnOffTest, SigmaZeroIsFirstOrder) {
  EXPECT_TRUE(make_onoff_multiplexer(table1_params(0.0)).is_first_order());
  EXPECT_FALSE(make_onoff_multiplexer(table1_params(1.0)).is_first_order());
}

TEST(OnOffTest, Table2ParametersMatchPaper) {
  const auto p = table2_params();
  EXPECT_DOUBLE_EQ(p.capacity, 200000.0);
  EXPECT_EQ(p.num_sources, 200000u);
  EXPECT_DOUBLE_EQ(p.rate_variance, 10.0);
  // q = N alpha = 800,000 as reported below Table 2 (build a scaled-down
  // version to keep the test fast and check the formula instead).
  auto small = p;
  small.num_sources = 100;
  small.capacity = 100.0;
  const auto model = make_onoff_multiplexer(small);
  EXPECT_DOUBLE_EQ(model.generator().uniformization_rate(),
                   100.0 * small.on_rate);
}

TEST(OnOffTest, GeneratorRowsSumToZero) {
  const auto model = make_onoff_multiplexer(table1_params(1.0));
  EXPECT_TRUE(model.generator().matrix().has_zero_row_sums(1e-9));
}

TEST(OnOffTest, InputValidation) {
  auto p = table1_params(1.0);
  p.num_sources = 0;
  EXPECT_THROW(make_onoff_multiplexer(p), std::invalid_argument);
  p = table1_params(1.0);
  p.on_rate = 0.0;
  EXPECT_THROW(make_onoff_multiplexer(p), std::invalid_argument);
  p = table1_params(-1.0);
  EXPECT_THROW(make_onoff_multiplexer(p), std::invalid_argument);
}

TEST(BirthDeathTest, RatesPlacedOnCorrectDiagonals) {
  const auto gen = make_birth_death_generator(
      4, [](std::size_t i) { return 1.0 + static_cast<double>(i); },
      [](std::size_t i) { return 2.0 * static_cast<double>(i); });
  EXPECT_DOUBLE_EQ(gen.matrix().at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(gen.matrix().at(2, 3), 3.0);
  EXPECT_DOUBLE_EQ(gen.matrix().at(3, 2), 6.0);
  EXPECT_DOUBLE_EQ(gen.matrix().at(0, 0), -1.0);
  EXPECT_TRUE(gen.matrix().has_zero_row_sums(1e-12));
}

TEST(BirthDeathTest, ZeroRatesOmitTransitions) {
  const auto gen = make_birth_death_generator(
      3, [](std::size_t) { return 0.0; }, [](std::size_t) { return 1.0; });
  EXPECT_DOUBLE_EQ(gen.matrix().at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(gen.exit_rates()[0], 0.0);
}

TEST(BirthDeathTest, NegativeRateRejected) {
  EXPECT_THROW(make_birth_death_generator(
                   3, [](std::size_t) { return -1.0; },
                   [](std::size_t) { return 1.0; }),
               std::invalid_argument);
}

TEST(BirthDeathTest, MrmBuilderWiresRewards) {
  const auto m = make_birth_death_mrm(
      3, [](std::size_t) { return 1.0; }, [](std::size_t) { return 2.0; },
      [](std::size_t i) { return 10.0 - static_cast<double>(i); },
      [](std::size_t i) { return 0.5 * static_cast<double>(i); },
      /*initial_state=*/1);
  EXPECT_DOUBLE_EQ(m.drifts()[2], 8.0);
  EXPECT_DOUBLE_EQ(m.variances()[2], 1.0);
  EXPECT_DOUBLE_EQ(m.initial()[1], 1.0);
}

TEST(ReliabilityTest, MachineRepairStructure) {
  MachineRepairParams p;
  p.num_processors = 4;
  p.failure_rate = 0.5;
  p.repair_rate = 2.0;
  p.num_repairmen = 2;
  p.unit_power = 3.0;
  p.unit_power_variance = 0.25;
  const auto m = make_machine_repair(p);
  EXPECT_EQ(m.num_states(), 5u);

  const auto& q = m.generator().matrix();
  EXPECT_DOUBLE_EQ(q.at(0, 1), 4.0 * 0.5);  // all up, one fails
  EXPECT_DOUBLE_EQ(q.at(3, 4), 1.0 * 0.5);
  EXPECT_DOUBLE_EQ(q.at(1, 0), 1.0 * 2.0);  // one repairman busy
  EXPECT_DOUBLE_EQ(q.at(3, 2), 2.0 * 2.0);  // repair capacity saturates at 2

  EXPECT_DOUBLE_EQ(m.drifts()[0], 12.0);
  EXPECT_DOUBLE_EQ(m.drifts()[4], 0.0);
  EXPECT_DOUBLE_EQ(m.variances()[1], 0.75);
  EXPECT_DOUBLE_EQ(m.initial()[0], 1.0);
}

TEST(ReliabilityTest, InitialFailedRespected) {
  MachineRepairParams p;
  p.num_processors = 3;
  p.initial_failed = 2;
  const auto m = make_machine_repair(p);
  EXPECT_DOUBLE_EQ(m.initial()[2], 1.0);
}

TEST(ReliabilityTest, InputValidation) {
  MachineRepairParams p;
  p.num_processors = 0;
  EXPECT_THROW(make_machine_repair(p), std::invalid_argument);
  p = MachineRepairParams{};
  p.repair_rate = 0.0;
  EXPECT_THROW(make_machine_repair(p), std::invalid_argument);
  p = MachineRepairParams{};
  p.initial_failed = 100;
  EXPECT_THROW(make_machine_repair(p), std::invalid_argument);
  p = MachineRepairParams{};
  p.num_repairmen = 0;
  EXPECT_THROW(make_machine_repair(p), std::invalid_argument);
}

}  // namespace
}  // namespace somrm::models
