// Tests for obs/histogram.hpp: bucket geometry invariants, exact-from-
// counts quantiles on hand-built bucket contents, and — the load-bearing
// contract — merge determinism: the merged bucket counts for a fixed
// recorded multiset are IDENTICAL at 1/2/4/8 threads, regardless of which
// thread recorded which value. The pure geometry/quantile tests run in
// SOMRM_OBSERVABILITY=OFF builds too; registry tests collapse to the
// no-op-behavior checks there.

#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/parallel.hpp"
#include "obs/histogram.hpp"

namespace obs = somrm::obs;
namespace linalg = somrm::linalg;

// -- bucket geometry (pure, both builds) ------------------------------------

TEST(HistogramGeometry, NonPositiveValuesLandInBucketZero) {
  EXPECT_EQ(obs::histogram_bucket_index(0), 0u);
  EXPECT_EQ(obs::histogram_bucket_index(-1), 0u);
  EXPECT_EQ(obs::histogram_bucket_index(std::numeric_limits<std::int64_t>::min()),
            0u);
  EXPECT_EQ(obs::histogram_bucket_lower(0), 0);
}

TEST(HistogramGeometry, SmallValuesGetSingletonBuckets) {
  for (std::int64_t v = 1; v <= 3; ++v) {
    const std::size_t idx = obs::histogram_bucket_index(v);
    EXPECT_EQ(obs::histogram_bucket_lower(idx), v);
    EXPECT_EQ(obs::histogram_bucket_upper(idx), v + 1);
  }
}

TEST(HistogramGeometry, EveryValueFallsInsideItsBucket) {
  std::vector<std::int64_t> probes = {1, 2, 3, 4, 5, 7, 8, 15, 16, 17,
                                      100, 1000, 123456, 1 << 20};
  // Powers of two, their neighbours, and the extremes: bucket boundaries
  // live at (4 + s) << e, so +-1 around powers of two probes the edges.
  for (int e = 2; e < 63; ++e) {
    const std::int64_t p = std::int64_t{1} << e;
    probes.push_back(p - 1);
    probes.push_back(p);
    probes.push_back(p + 1);
  }
  for (std::int64_t v : probes) {
    const std::size_t idx = obs::histogram_bucket_index(v);
    ASSERT_LT(idx, obs::kHistogramBuckets) << "value " << v;
    EXPECT_LE(obs::histogram_bucket_lower(idx), v) << "value " << v;
    EXPECT_LT(v, obs::histogram_bucket_upper(idx)) << "value " << v;
  }
  // INT64_MAX is the one value at the inclusive top of the last bucket
  // (whose upper bound is the INT64_MAX sentinel itself).
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  EXPECT_EQ(obs::histogram_bucket_index(kMax), obs::kHistogramBuckets - 1);
  EXPECT_LE(obs::histogram_bucket_lower(obs::kHistogramBuckets - 1), kMax);
}

TEST(HistogramGeometry, BucketBoundsAreStrictlyIncreasing) {
  for (std::size_t b = 0; b + 1 < obs::kHistogramBuckets; ++b) {
    EXPECT_LT(obs::histogram_bucket_lower(b),
              obs::histogram_bucket_lower(b + 1))
        << "bucket " << b;
    EXPECT_EQ(obs::histogram_bucket_upper(b),
              obs::histogram_bucket_lower(b + 1))
        << "bucket " << b;
  }
  EXPECT_EQ(obs::histogram_bucket_upper(obs::kHistogramBuckets - 1),
            std::numeric_limits<std::int64_t>::max());
}

TEST(HistogramGeometry, RelativeBucketWidthAtMost25Percent) {
  for (std::size_t b = obs::histogram_bucket_index(4);
       b + 1 < obs::kHistogramBuckets; ++b) {
    const double lower = static_cast<double>(obs::histogram_bucket_lower(b));
    const double width =
        static_cast<double>(obs::histogram_bucket_upper(b)) - lower;
    EXPECT_LE(width / lower, 0.25 + 1e-12) << "bucket " << b;
  }
}

// -- exact-from-counts quantiles (pure, both builds) ------------------------

TEST(HistogramQuantile, HandBuiltCountsGiveExactOrderStatistics) {
  // 4 values of 100, 5 of 1000, 1 of 50000 — quantile(q) must return the
  // bucket lower bound of the rank-ceil(q*10) smallest value.
  std::vector<std::int64_t> buckets(obs::kHistogramBuckets, 0);
  const std::int64_t lo100 =
      obs::histogram_bucket_lower(obs::histogram_bucket_index(100));
  const std::int64_t lo1000 =
      obs::histogram_bucket_lower(obs::histogram_bucket_index(1000));
  const std::int64_t lo50000 =
      obs::histogram_bucket_lower(obs::histogram_bucket_index(50000));
  buckets[obs::histogram_bucket_index(100)] = 4;
  buckets[obs::histogram_bucket_index(1000)] = 5;
  buckets[obs::histogram_bucket_index(50000)] = 1;

  EXPECT_EQ(obs::histogram_quantile_from_counts(buckets, 0.0), lo100);
  EXPECT_EQ(obs::histogram_quantile_from_counts(buckets, 0.40), lo100);
  EXPECT_EQ(obs::histogram_quantile_from_counts(buckets, 0.50), lo1000);
  EXPECT_EQ(obs::histogram_quantile_from_counts(buckets, 0.90), lo1000);
  EXPECT_EQ(obs::histogram_quantile_from_counts(buckets, 0.91), lo50000);
  EXPECT_EQ(obs::histogram_quantile_from_counts(buckets, 0.999), lo50000);
  EXPECT_EQ(obs::histogram_quantile_from_counts(buckets, 1.0), lo50000);
}

TEST(HistogramQuantile, EmptyCountsReturnZero) {
  const std::vector<std::int64_t> empty(obs::kHistogramBuckets, 0);
  EXPECT_EQ(obs::histogram_quantile_from_counts(empty, 0.5), 0);
  EXPECT_EQ(obs::histogram_quantile_from_counts({}, 0.5), 0);
}

TEST(HistogramQuantile, SingleValueAtEveryQuantile) {
  std::vector<std::int64_t> buckets(obs::kHistogramBuckets, 0);
  const std::size_t idx = obs::histogram_bucket_index(777);
  buckets[idx] = 1;
  const std::int64_t lo = obs::histogram_bucket_lower(idx);
  for (double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0})
    EXPECT_EQ(obs::histogram_quantile_from_counts(buckets, q), lo);
}

// -- registry behavior ------------------------------------------------------

namespace {

/// The fixed per-index value multiset the merge test records: spans several
/// octaves so many distinct buckets fill.
std::int64_t merge_value(std::size_t i) {
  return static_cast<std::int64_t>((i * 37) % 5000 + 1);
}

}  // namespace

TEST(HistogramMergeTest, BucketCountsIdenticalAcross1248Threads) {
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  constexpr std::size_t kValues = 20000;
  obs::Histogram& h = obs::histogram("test.merge.determinism");

  const std::size_t original_threads = linalg::num_threads();
  std::vector<std::int64_t> reference;
  std::int64_t reference_sum = 0;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    obs::reset_histograms();
    linalg::set_num_threads(threads);
    // grain 1 so every thread count actually splits the range.
    linalg::parallel_for(
        kValues, [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) h.record(merge_value(i));
        },
        /*grain=*/1);
    const std::vector<std::int64_t> merged = h.bucket_counts();
    const std::int64_t sum = h.sum();
    EXPECT_EQ(h.count(), static_cast<std::int64_t>(kValues))
        << threads << " threads";
    if (reference.empty()) {
      reference = merged;
      reference_sum = sum;
    } else {
      EXPECT_EQ(merged, reference) << threads << " threads";
      EXPECT_EQ(sum, reference_sum) << threads << " threads";
    }
  }
  linalg::set_num_threads(original_threads);

  // And the merged counts are what a serial tally of the multiset gives.
  std::vector<std::int64_t> expected(obs::kHistogramBuckets, 0);
  for (std::size_t i = 0; i < kValues; ++i)
    ++expected[obs::histogram_bucket_index(merge_value(i))];
  EXPECT_EQ(reference, expected);
}

TEST(HistogramRegistry, SnapshotSortedByNameAndConsistent) {
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  obs::reset_histograms();
  obs::histogram("test.zz.later").record(10);
  obs::histogram("test.aa.earlier").record(20);
  obs::histogram("test.aa.earlier").record(30);
  const auto snap = obs::histogram_snapshot();
  ASSERT_GE(snap.size(), 2u);
  for (std::size_t i = 0; i + 1 < snap.size(); ++i)
    EXPECT_LT(snap[i].name, snap[i + 1].name);
  for (const obs::HistogramSample& s : snap) {
    std::int64_t total = 0;
    ASSERT_EQ(s.buckets.size(), obs::kHistogramBuckets) << s.name;
    for (std::int64_t c : s.buckets) total += c;
    EXPECT_EQ(total, s.count) << s.name;
    if (s.name == "test.aa.earlier") {
      EXPECT_EQ(s.count, 2);
      EXPECT_EQ(s.sum, 50);
      EXPECT_EQ(s.quantile(0.5), obs::histogram_bucket_lower(
                                     obs::histogram_bucket_index(20)));
    }
  }
}

TEST(HistogramRegistry, SameNameReturnsSameHandle) {
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  obs::Histogram& a = obs::histogram("test.same.handle");
  obs::Histogram& b = obs::histogram("test.same.handle");
  EXPECT_EQ(&a, &b);
}

TEST(HistogramOffBuild, CollapsesToNoOps) {
  if (obs::kEnabled) GTEST_SKIP() << "observability compiled in";
  obs::Histogram& h = obs::histogram("test.off.noop");
  h.record(123);
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_TRUE(h.bucket_counts().empty());
  EXPECT_EQ(h.quantile(0.99), 0);
  EXPECT_TRUE(obs::histogram_snapshot().empty());
}
