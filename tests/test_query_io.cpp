// Tests for the strict batch query file parser (io/query_io.hpp) — the
// replacement for somrm_cli's old ad-hoc --batch parsing, which silently
// mis-read three classes of malformed input:
//
//  * CRLF line endings: the trailing '\r' used to stick to the last token
//    ("w=0:1\r" -> weight parse failure or, worse, a bare "\r" token read
//    as an extra field). The parser now strips exactly the terminator's
//    '\r'; a '\r' anywhere else is still garbage.
//  * Duplicate keys ("n=2 n=4"): last-one-wins made the file lie about
//    what ran. Now a named, line-numbered rejection.
//  * Trailing garbage ("2x" orders, "0.5abc" times, stray entries): strtod
//    / strtoull with unchecked end pointers used to swallow the prefix.
//    Every token must now parse completely.
//
// Every rejection is a ParseError carrying the 1-based line number, so a
// bad line in a million-query file is findable.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "io/query_io.hpp"

namespace somrm {
namespace {

using io::BatchQuery;
using io::ParseError;

std::vector<BatchQuery> parse(const std::string& text,
                              std::size_t num_states = 4) {
  std::istringstream in(text);
  return io::parse_query_file(in, num_states);
}

/// Expects the parse to fail with a ParseError naming @p line whose
/// message contains @p needle.
void expect_rejects(const std::string& text, std::size_t line,
                    const std::string& needle, std::size_t num_states = 4) {
  try {
    parse(text, num_states);
    FAIL() << "accepted: " << text;
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), line) << e.what();
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// Valid input
// ---------------------------------------------------------------------------

TEST(QueryIoTest, ParsesTimesOrdersAndSparseVectors) {
  const auto qs = parse(
      "0.5\n"
      "1.25 n=2\n"
      "2.0 pi=0:0.25,2:0.75 w=1:1.5,3:2 n=1\n");
  ASSERT_EQ(qs.size(), 3u);

  EXPECT_EQ(qs[0].time, 0.5);
  EXPECT_EQ(qs[0].order, core::SessionQuery::kSessionMax);
  EXPECT_TRUE(qs[0].initial.empty());
  EXPECT_TRUE(qs[0].terminal_weights.empty());

  EXPECT_EQ(qs[1].time, 1.25);
  EXPECT_EQ(qs[1].order, 2u);

  EXPECT_EQ(qs[2].order, 1u);
  ASSERT_EQ(qs[2].initial.size(), 4u);
  EXPECT_EQ(qs[2].initial[0], 0.25);
  EXPECT_EQ(qs[2].initial[1], 0.0);
  EXPECT_EQ(qs[2].initial[2], 0.75);
  ASSERT_EQ(qs[2].terminal_weights.size(), 4u);
  EXPECT_EQ(qs[2].terminal_weights[1], 1.5);
  EXPECT_EQ(qs[2].terminal_weights[3], 2.0);
}

TEST(QueryIoTest, SkipsBlankLinesAndComments) {
  const auto qs = parse(
      "# a comment line\n"
      "\n"
      "0.5 # trailing comment\n"
      "   \n"
      "1.0 n=1 # another\n");
  ASSERT_EQ(qs.size(), 2u);
  EXPECT_EQ(qs[0].time, 0.5);
  EXPECT_EQ(qs[1].order, 1u);
}

TEST(QueryIoTest, KeysAcceptedInAnyOrder) {
  const auto qs = parse("0.5 w=0:1 n=2 pi=1:1\n");
  ASSERT_EQ(qs.size(), 1u);
  EXPECT_EQ(qs[0].order, 2u);
  EXPECT_EQ(qs[0].initial[1], 1.0);
  EXPECT_EQ(qs[0].terminal_weights[0], 1.0);
}

TEST(QueryIoTest, EmptyInputParsesToNoQueries) {
  EXPECT_TRUE(parse("").empty());
  EXPECT_TRUE(parse("# only comments\n\n").empty());
}

// ---------------------------------------------------------------------------
// Bug class 1: CRLF line endings
// ---------------------------------------------------------------------------

TEST(QueryIoTest, CrlfTerminatorsParseIdenticallyToLf) {
  const auto lf = parse("0.5 n=2 w=0:1\n1.0 pi=3:1\n");
  const auto crlf = parse("0.5 n=2 w=0:1\r\n1.0 pi=3:1\r\n");
  ASSERT_EQ(crlf.size(), lf.size());
  for (std::size_t i = 0; i < lf.size(); ++i) {
    EXPECT_EQ(crlf[i].time, lf[i].time) << i;
    EXPECT_EQ(crlf[i].order, lf[i].order) << i;
    EXPECT_EQ(crlf[i].initial, lf[i].initial) << i;
    EXPECT_EQ(crlf[i].terminal_weights, lf[i].terminal_weights) << i;
  }
  // Final line without any terminator still parses.
  EXPECT_EQ(parse("0.5 n=1").size(), 1u);
  EXPECT_EQ(parse("0.5 n=1\r").size(), 1u);
}

TEST(QueryIoTest, CarriageReturnInsideALineActsAsWhitespace) {
  // Only the line-terminator '\r' is stripped explicitly; an embedded one
  // is stream whitespace like a tab, so it separates tokens — it can never
  // stick to a token and corrupt it (the original CRLF bug).
  const auto qs = parse("0.5\rn=2\n");
  ASSERT_EQ(qs.size(), 1u);
  EXPECT_EQ(qs[0].time, 0.5);
  EXPECT_EQ(qs[0].order, 2u);
}

// ---------------------------------------------------------------------------
// Bug class 2: duplicate keys
// ---------------------------------------------------------------------------

TEST(QueryIoTest, DuplicateKeysOnOneLineAreRejected) {
  expect_rejects("0.5 n=2 n=4\n", 1, "duplicate key 'n='");
  expect_rejects("0.5 pi=0:1 pi=1:1\n", 1, "duplicate key 'pi='");
  expect_rejects("0.5 w=0:1 w=0:2\n", 1, "duplicate key 'w='");
  // The line number names the offender, not the file start.
  expect_rejects("0.5\n1.0 n=1 n=1\n", 2, "duplicate key 'n='");
}

TEST(QueryIoTest, DuplicateStateInOneVectorIsRejected) {
  expect_rejects("0.5 pi=0:0.3,0:0.7\n", 1, "duplicate state 0");
  expect_rejects("0.5 w=2:1,1:1,2:3\n", 1, "duplicate state 2");
}

TEST(QueryIoTest, SameKeyOnDifferentLinesIsFine) {
  EXPECT_EQ(parse("0.5 n=1\n1.0 n=2\n").size(), 2u);
}

// ---------------------------------------------------------------------------
// Bug class 3: trailing garbage / partial tokens
// ---------------------------------------------------------------------------

TEST(QueryIoTest, PartialNumbersAreRejectedNotTruncated) {
  expect_rejects("0.5x\n", 1, "bad number '0.5x'");
  expect_rejects("0.5 n=2x\n", 1, "bad non-negative integer '2x'");
  expect_rejects("0.5 n=-1\n", 1, "bad non-negative integer '-1'");
  expect_rejects("0.5 n=+2\n", 1, "bad non-negative integer '+2'");
  expect_rejects("0.5 w=0:1.5abc\n", 1, "bad number '1.5abc'");
  expect_rejects("0.5 n=\n", 1, "empty value");
}

TEST(QueryIoTest, NonFiniteTimesAreRejected) {
  expect_rejects("nan\n", 1, "non-finite");
  expect_rejects("inf n=1\n", 1, "non-finite");
  expect_rejects("1e999\n", 1, "non-finite");
}

TEST(QueryIoTest, UnknownTokensAreRejected) {
  expect_rejects("0.5 bogus\n", 1, "unknown token 'bogus'");
  expect_rejects("0.5 N=2\n", 1, "unknown token 'N=2'");
  expect_rejects("0.5 n=2 extra=1\n", 1, "unknown token 'extra=1'");
}

TEST(QueryIoTest, MalformedSparseVectorsAreRejected) {
  expect_rejects("0.5 pi=\n", 1, "empty list");
  expect_rejects("0.5 pi=0:1,\n", 1, "trailing ','");
  expect_rejects("0.5 pi=0:1,,1:2\n", 1, "empty entry");
  expect_rejects("0.5 pi=0\n", 1, "bad entry '0'");
  expect_rejects("0.5 pi=0:1:2\n", 1, "bad entry '0:1:2'");
  expect_rejects("0.5 w=7:1\n", 1, "state 7 out of range");
  expect_rejects("0.5 pi=x:1\n", 1, "bad non-negative integer 'x'");
}

// ---------------------------------------------------------------------------
// File loading
// ---------------------------------------------------------------------------

TEST(QueryIoTest, LoadQueryFileNamesMissingPath) {
  try {
    io::load_query_file(::testing::TempDir() + "somrm_no_such_queries.txt", 4);
    FAIL() << "missing file accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("cannot open batch query file"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace somrm
