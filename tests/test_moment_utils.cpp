// Tests for binomial shifts, central/standardized moments and summary stats.

#include "core/moment_utils.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "prob/normal.hpp"

namespace somrm::core {
namespace {

TEST(BinomialTest, SmallValuesExact) {
  EXPECT_DOUBLE_EQ(binomial_coefficient(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_coefficient(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(binomial_coefficient(10, 5), 252.0);
  EXPECT_DOUBLE_EQ(binomial_coefficient(4, 7), 0.0);
}

TEST(BinomialTest, PascalIdentityHolds) {
  for (std::size_t n = 1; n <= 30; ++n)
    for (std::size_t k = 1; k <= n; ++k)
      EXPECT_DOUBLE_EQ(binomial_coefficient(n, k),
                       binomial_coefficient(n - 1, k - 1) +
                           binomial_coefficient(n - 1, k));
}

TEST(ShiftMomentsTest, ShiftOfDegenerateAtZero) {
  // X = 0 a.s.: raw = (1, 0, 0, 0). X + d has moments d^k.
  const std::vector<double> raw{1.0, 0.0, 0.0, 0.0};
  const auto shifted = shift_raw_moments(raw, 2.0);
  EXPECT_DOUBLE_EQ(shifted[0], 1.0);
  EXPECT_DOUBLE_EQ(shifted[1], 2.0);
  EXPECT_DOUBLE_EQ(shifted[2], 4.0);
  EXPECT_DOUBLE_EQ(shifted[3], 8.0);
}

TEST(ShiftMomentsTest, ShiftThenUnshiftIsIdentity) {
  const std::vector<double> raw{1.0, 0.7, 1.9, 2.2, 11.0};
  const auto there = shift_raw_moments(raw, 1.3);
  const auto back = shift_raw_moments(there, -1.3);
  for (std::size_t k = 0; k < raw.size(); ++k)
    EXPECT_NEAR(back[k], raw[k], 1e-12);
}

TEST(ShiftMomentsTest, MatchesNormalClosedForm) {
  // Shifting N(0, s^2) by mu gives N(mu, s^2).
  const auto centered = prob::normal_raw_moments(0.0, 2.0, 6);
  const auto shifted = shift_raw_moments(centered, 1.5);
  const auto direct = prob::normal_raw_moments(1.5, 2.0, 6);
  for (std::size_t k = 0; k <= 6; ++k)
    EXPECT_NEAR(shifted[k], direct[k], 1e-10 * std::abs(direct[k]) + 1e-12);
}

TEST(CentralMomentsTest, NormalCentralMoments) {
  const auto raw = prob::normal_raw_moments(3.0, 4.0, 6);
  const auto central = central_moments_from_raw(raw);
  EXPECT_NEAR(central[1], 0.0, 1e-10);
  EXPECT_NEAR(central[2], 4.0, 1e-9);
  EXPECT_NEAR(central[3], 0.0, 1e-8);
  EXPECT_NEAR(central[4], 3.0 * 16.0, 1e-7);
  EXPECT_NEAR(central[6], 15.0 * 64.0, 1e-5);
}

TEST(StandardizeTest, NormalBecomesStandardNormal) {
  const auto raw = prob::normal_raw_moments(-2.0, 9.0, 8);
  const auto std_m = standardize_raw_moments(raw);
  EXPECT_DOUBLE_EQ(std_m.mean, -2.0);
  EXPECT_DOUBLE_EQ(std_m.stddev, 3.0);
  const auto expected = prob::normal_raw_moments(0.0, 1.0, 8);
  for (std::size_t k = 0; k <= 8; ++k)
    EXPECT_NEAR(std_m.moments[k], expected[k], 1e-8);
}

TEST(StandardizeTest, RejectsZeroVariance) {
  // X = 5 a.s.
  const std::vector<double> raw{1.0, 5.0, 25.0};
  EXPECT_THROW(standardize_raw_moments(raw), std::invalid_argument);
}

TEST(SummaryStatsTest, VarianceSkewnessKurtosisOfExponential) {
  // Exp(1): mu_k = k!. Variance 1, skewness 2, excess kurtosis 6.
  std::vector<double> raw(7);
  raw[0] = 1.0;
  for (std::size_t k = 1; k <= 6; ++k)
    raw[k] = raw[k - 1] * static_cast<double>(k);
  EXPECT_NEAR(variance_from_raw(raw), 1.0, 1e-12);
  EXPECT_NEAR(skewness_from_raw(raw), 2.0, 1e-11);
  EXPECT_NEAR(excess_kurtosis_from_raw(raw), 6.0, 1e-10);
}

TEST(CumulantsTest, NormalCumulantsVanishAboveTwo) {
  // N(mu, s2): kappa_1 = mu, kappa_2 = s2, all higher cumulants 0.
  const std::vector<double> kappa{1.5, 2.25, 0.0, 0.0, 0.0, 0.0};
  const auto m = moments_from_cumulants(kappa);
  const auto exact = prob::normal_raw_moments(1.5, 2.25, 6);
  for (std::size_t k = 0; k <= 6; ++k)
    EXPECT_NEAR(m[k], exact[k], 1e-10 * std::abs(exact[k]) + 1e-12);
}

TEST(CumulantsTest, PoissonCumulantsAllLambda) {
  // Pois(lambda): every cumulant is lambda; check low raw moments.
  const double lambda = 3.0;
  const std::vector<double> kappa(4, lambda);
  const auto m = moments_from_cumulants(kappa);
  EXPECT_NEAR(m[1], lambda, 1e-12);
  EXPECT_NEAR(m[2], lambda + lambda * lambda, 1e-12);
  EXPECT_NEAR(m[3], lambda + 3 * lambda * lambda + lambda * lambda * lambda,
              1e-11);
}

TEST(CumulantsTest, RoundTripMomentsCumulants) {
  std::vector<double> raw{1.0, 0.5, 1.7, 2.1, 9.3, 20.0};
  const auto kappa = cumulants_from_moments(raw);
  const auto back = moments_from_cumulants(kappa);
  for (std::size_t k = 0; k < raw.size(); ++k)
    EXPECT_NEAR(back[k], raw[k], 1e-10 * (1.0 + std::abs(raw[k])));
}

TEST(CumulantsTest, RejectsBadMuZero) {
  EXPECT_THROW(cumulants_from_moments(std::vector<double>{2.0, 1.0}),
               std::invalid_argument);
}

TEST(SummaryStatsTest, InputSizeValidation) {
  const std::vector<double> tiny{1.0, 2.0};
  EXPECT_THROW(variance_from_raw(tiny), std::invalid_argument);
  EXPECT_THROW(skewness_from_raw(tiny), std::invalid_argument);
  EXPECT_THROW(excess_kurtosis_from_raw(tiny), std::invalid_argument);
}

}  // namespace
}  // namespace somrm::core
