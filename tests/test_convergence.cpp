// Convergence and refinement properties across the numerical methods:
// errors must shrink at (at least) the advertised rates as discretizations
// are refined. These tests guard against silent first-order regressions
// that exact-value anchors at a single resolution would miss.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/ode_solver.hpp"
#include "core/randomization.hpp"
#include "density/pde_solver.hpp"
#include "density/transform_solver.hpp"
#include "prob/normal.hpp"
#include "sim/simulator.hpp"

namespace somrm {
namespace {

using linalg::Triplet;
using linalg::Vec;

core::SecondOrderMrm test_model() {
  auto gen = ctmc::Generator::from_rates(
      2, std::vector<Triplet>{{0, 1, 3.0}, {1, 0, 2.0}});
  return core::SecondOrderMrm(std::move(gen), Vec{2.0, -1.0}, Vec{0.5, 1.5},
                              Vec{1.0, 0.0});
}

double reference_m2(const core::SecondOrderMrm& m, double t) {
  core::MomentSolverOptions opts;
  opts.epsilon = 1e-13;
  return core::RandomizationMomentSolver(m).solve(t, opts).weighted[2];
}

TEST(ConvergenceTest, TrapezoidErrorShrinksQuadratically) {
  const auto model = test_model();
  const double t = 0.5;
  const double ref = reference_m2(model, t);

  std::vector<double> errors;
  for (std::size_t steps : {50, 100, 200, 400}) {
    core::OdeSolverOptions opts;
    opts.num_steps = steps;
    const auto res =
        core::solve_moments_ode(model, t, core::OdeMethod::kTrapezoid, opts);
    errors.push_back(std::abs(res.weighted[2] - ref));
  }
  // Each halving of h should cut the error by ~4; require >= 3 to allow
  // rounding floor effects at the finest level.
  for (std::size_t k = 1; k < errors.size(); ++k)
    EXPECT_LT(errors[k], errors[k - 1] / 3.0) << "level " << k;
}

TEST(ConvergenceTest, Rk4ReachesRoundingPlateauFast) {
  const auto model = test_model();
  const double t = 0.5;
  const double ref = reference_m2(model, t);
  core::OdeSolverOptions opts;
  opts.num_steps = 64;  // below stability limit; auto-raised
  const auto res =
      core::solve_moments_ode(model, t, core::OdeMethod::kRk4, opts);
  EXPECT_LT(std::abs(res.weighted[2] - ref), 1e-8 * (1.0 + std::abs(ref)));
}

TEST(ConvergenceTest, PdeErrorShrinksWithGridRefinement) {
  // Brownian anchor (uniform rewards): exact density known.
  auto gen = ctmc::Generator::from_rates(
      2, std::vector<Triplet>{{0, 1, 1.0}, {1, 0, 1.0}});
  const core::SecondOrderMrm m(std::move(gen), Vec{1.0, 1.0}, Vec{1.0, 1.0},
                               Vec{1.0, 0.0});
  const double t = 0.5;

  std::vector<double> errors;
  for (std::size_t level = 0; level < 3; ++level) {
    density::PdeSolverOptions opts;
    const std::size_t pts = 301 * (1u << level) - (1u << level) + 1;
    opts.grid = {-5.0, 6.0, pts};
    opts.num_time_steps = 100 * (1u << level);
    const auto res = density::density_via_pde(m, t, opts);
    double err = 0.0;
    for (std::size_t j = 0; j < res.x.size(); j += 7) {
      const double exact = prob::normal_pdf(res.x[j], t, t);
      err = std::max(err, std::abs(res.weighted[j] - exact));
    }
    errors.push_back(err);
  }
  EXPECT_LT(errors[1], errors[0]);
  EXPECT_LT(errors[2], errors[1]);
  EXPECT_LT(errors[2], 0.6 * errors[0]);
}

TEST(ConvergenceTest, TransformDensityConvergesWithGridSize) {
  const auto model = test_model();
  const double t = 0.5;
  const double ref = reference_m2(model, t);

  // The characteristic-function route is spectrally accurate: already at
  // 256 points the quadrature error sits at the rounding floor, and it must
  // stay there as the grid refines (no divergence from aliasing).
  for (std::size_t pts : {256, 512, 2048}) {
    density::TransformSolverOptions opts;
    opts.grid = {-8.0, 10.0, pts};
    const auto res = density::density_via_transform(model, t, opts);
    const double err = std::abs(
        density::raw_moment_from_density(res.x, res.weighted, 2) - ref);
    EXPECT_LT(err, 1e-9 * (1.0 + std::abs(ref))) << pts << " points";
  }
}

TEST(ConvergenceTest, MonteCarloErrorShrinksWithReplications) {
  const auto model = test_model();
  const sim::Simulator simulator(model);
  const double t = 0.5;
  core::MomentSolverOptions mopts;
  mopts.epsilon = 1e-12;
  const double exact =
      core::RandomizationMomentSolver(model).solve(t, mopts).weighted[1];

  // Average |error| over several seeds at two replication counts: the
  // larger count must be closer on average (weak but robust 1/sqrt(n)).
  double err_small = 0.0, err_large = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    sim::SimulationOptions small, large;
    small.num_replications = 2000;
    large.num_replications = 50000;
    small.seed = large.seed = seed * 7919;
    err_small +=
        std::abs(simulator.estimate_moments(t, small).moments[1] - exact);
    err_large +=
        std::abs(simulator.estimate_moments(t, large).moments[1] - exact);
  }
  EXPECT_LT(err_large, err_small);
}

TEST(ConvergenceTest, TruncationPointScalesWithLogEpsilon) {
  // G grows roughly like qt + c sqrt(qt log(1/eps)); doubling the digits
  // must grow G sublinearly — sanity on the Theorem-4 search.
  const double qt = 1000.0, d = 0.5;
  const auto g6 =
      core::RandomizationMomentSolver::truncation_point(qt, 3, d, 1e-6);
  const auto g12 =
      core::RandomizationMomentSolver::truncation_point(qt, 3, d, 1e-12);
  const auto g24 =
      core::RandomizationMomentSolver::truncation_point(qt, 3, d, 1e-24);
  EXPECT_LT(g6, g12);
  EXPECT_LT(g12, g24);
  // sqrt(log 1/eps) growth: the increment ratio for doubled log-precision
  // is (sqrt(24)-sqrt(12))/(sqrt(12)-sqrt(6)) ~ 1.41; linear growth would
  // give 2.0. Assert we are clearly sublinear.
  EXPECT_LT(static_cast<double>(g24 - g12),
            1.8 * static_cast<double>(g12 - g6));
}

}  // namespace
}  // namespace somrm
