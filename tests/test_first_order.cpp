// Tests for the first-order MRM solver, including its agreement with the
// second-order solver at sigma = 0 (two independent implementations of the
// same mathematics guarding each other).

#include "core/first_order.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

namespace somrm::core {
namespace {

using linalg::Triplet;
using linalg::Vec;

FirstOrderMrm two_state(double a, double b, Vec rates, Vec init) {
  auto gen = ctmc::Generator::from_rates(
      2, std::vector<Triplet>{{0, 1, a}, {1, 0, b}});
  return FirstOrderMrm(std::move(gen), std::move(rates), std::move(init));
}

TEST(FirstOrderTest, ValidationMirrorsSecondOrder) {
  auto gen = ctmc::Generator::from_rates(
      2, std::vector<Triplet>{{0, 1, 1.0}, {1, 0, 1.0}});
  EXPECT_THROW(FirstOrderMrm(gen, Vec{1.0}, Vec{1.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(FirstOrderMrm(gen, Vec{1.0, 2.0}, Vec{0.6, 0.6}),
               std::invalid_argument);
}

TEST(FirstOrderTest, UniformRatesGiveDeterministicReward) {
  // All states earn at rate r: B(t) = r t exactly, all moments are powers.
  const FirstOrderMrm m = two_state(2.0, 3.0, Vec{1.5, 1.5}, Vec{1.0, 0.0});
  const FirstOrderMomentSolver solver(m);
  MomentSolverOptions opts;
  opts.epsilon = 1e-12;
  const auto res = solver.solve(2.0, opts);
  for (std::size_t j = 0; j <= 3; ++j)
    EXPECT_NEAR(res.weighted[j], std::pow(3.0, static_cast<double>(j)),
                1e-9 * std::pow(3.0, static_cast<double>(j)) + 1e-10);
}

TEST(FirstOrderTest, DegenerateChainPowers) {
  auto gen = ctmc::Generator::from_rates(2, std::vector<Triplet>{});
  const FirstOrderMrm m(std::move(gen), Vec{2.0, -1.0}, Vec{0.5, 0.5});
  const FirstOrderMomentSolver solver(m);
  const auto res = solver.solve(3.0);
  // E[B^j] = 0.5 (2*3)^j + 0.5 (-1*3)^j.
  EXPECT_NEAR(res.weighted[1], 0.5 * 6.0 + 0.5 * (-3.0), 1e-12);
  EXPECT_NEAR(res.weighted[2], 0.5 * 36.0 + 0.5 * 9.0, 1e-12);
  EXPECT_NEAR(res.weighted[3], 0.5 * 216.0 + 0.5 * (-27.0), 1e-12);
}

TEST(FirstOrderTest, NegativeRatesHandledViaShift) {
  const FirstOrderMrm m = two_state(1.0, 2.0, Vec{-2.0, -2.0}, Vec{1.0, 0.0});
  const FirstOrderMomentSolver solver(m);
  MomentSolverOptions opts;
  opts.epsilon = 1e-12;
  const auto res = solver.solve(1.5, opts);
  EXPECT_NEAR(res.weighted[1], -3.0, 1e-10);
  EXPECT_NEAR(res.weighted[2], 9.0, 1e-9);
  EXPECT_NEAR(res.weighted[3], -27.0, 1e-8);
}

TEST(FirstOrderTest, AsSecondOrderRoundTrip) {
  const FirstOrderMrm m = two_state(1.0, 2.0, Vec{3.0, 1.0}, Vec{0.5, 0.5});
  const SecondOrderMrm s = m.as_second_order();
  EXPECT_TRUE(s.is_first_order());
  EXPECT_EQ(s.drifts(), m.rates());
  EXPECT_EQ(s.initial(), m.initial());
}

TEST(FirstOrderTest, TimeZeroAndValidation) {
  const FirstOrderMrm m = two_state(1.0, 1.0, Vec{1.0, 2.0}, Vec{1.0, 0.0});
  const FirstOrderMomentSolver solver(m);
  const auto res = solver.solve(0.0);
  EXPECT_DOUBLE_EQ(res.weighted[0], 1.0);
  EXPECT_DOUBLE_EQ(res.weighted[1], 0.0);
  EXPECT_THROW(solver.solve(-0.1), std::invalid_argument);
}

// Cross-implementation agreement sweep: first-order solver vs second-order
// solver with zero variances, over several chains, rates and times.
class FirstOrderCrossTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(FirstOrderCrossTest, MatchesSecondOrderWithZeroVariance) {
  const auto [n, t] = GetParam();
  std::vector<Triplet> rate_list;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    rate_list.push_back({i, i + 1, 1.0 + 0.5 * static_cast<double>(i)});
    rate_list.push_back({i + 1, i, 1.3});
  }
  auto gen = ctmc::Generator::from_rates(n, rate_list);
  Vec rates(n);
  for (std::size_t i = 0; i < n; ++i)
    rates[i] = std::cos(static_cast<double>(i)) * 3.0;  // mixed signs
  const Vec init = linalg::unit_vec(n, 0);

  const FirstOrderMrm fo(gen, rates, init);
  const FirstOrderMomentSolver fo_solver(fo);
  const RandomizationMomentSolver so_solver(fo.as_second_order());

  MomentSolverOptions opts;
  opts.max_moment = 4;
  opts.epsilon = 1e-12;
  const auto rf = fo_solver.solve(t, opts);
  const auto rs = so_solver.solve(t, opts);
  for (std::size_t j = 0; j <= 4; ++j)
    EXPECT_NEAR(rf.weighted[j], rs.weighted[j],
                1e-8 * (1.0 + std::abs(rs.weighted[j])))
        << "moment " << j;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FirstOrderCrossTest,
    ::testing::Combine(::testing::Values<std::size_t>(2, 4, 9),
                       ::testing::Values(0.1, 0.8, 2.0)));

}  // namespace
}  // namespace somrm::core
