// Tests for the Monte Carlo simulator and the trajectory recorder.

#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/randomization.hpp"
#include "prob/normal.hpp"
#include "sim/trajectory.hpp"

namespace somrm::sim {
namespace {

using linalg::Triplet;
using linalg::Vec;

core::SecondOrderMrm two_state_model() {
  auto gen = ctmc::Generator::from_rates(
      2, std::vector<Triplet>{{0, 1, 2.0}, {1, 0, 3.0}});
  return core::SecondOrderMrm(std::move(gen), Vec{3.0, -1.0}, Vec{0.5, 1.0},
                              Vec{1.0, 0.0});
}

TEST(SimulatorTest, ReproducibleWithSameSeed) {
  const Simulator sim(two_state_model());
  const auto a = sim.sample_rewards(1.0, 100, 7);
  const auto b = sim.sample_rewards(1.0, 100, 7);
  EXPECT_EQ(a, b);
  const auto c = sim.sample_rewards(1.0, 100, 8);
  EXPECT_NE(a, c);
}

TEST(SimulatorTest, MomentEstimatesMatchAnalyticWithinCi) {
  const auto model = two_state_model();
  const Simulator sim(model);
  const core::RandomizationMomentSolver solver(model);
  core::MomentSolverOptions mopts;
  mopts.epsilon = 1e-11;
  const auto exact = solver.solve(0.8, mopts);

  SimulationOptions sopts;
  sopts.num_replications = 200000;
  sopts.seed = 12345;
  const auto est = sim.estimate_moments(0.8, sopts);
  for (std::size_t j = 1; j <= 3; ++j) {
    const double err = std::abs(est.moments[j] - exact.weighted[j]);
    EXPECT_LT(err, 5.0 * est.standard_errors[j] + 1e-9)
        << "moment " << j << " est " << est.moments[j] << " exact "
        << exact.weighted[j];
  }
}

TEST(SimulatorTest, DeterministicModelGivesExactReward) {
  // sigma = 0 and equal rates: B(t) = r t with no randomness at all.
  auto gen = ctmc::Generator::from_rates(
      2, std::vector<Triplet>{{0, 1, 1.0}, {1, 0, 1.0}});
  const core::SecondOrderMrm m(std::move(gen), Vec{2.0, 2.0}, Vec{0.0, 0.0},
                               Vec{1.0, 0.0});
  const Simulator sim(m);
  const auto samples = sim.sample_rewards(1.5, 50, 3);
  for (double s : samples) EXPECT_NEAR(s, 3.0, 1e-12);
}

TEST(SimulatorTest, AbsorbingChainSamplesSingleNormal) {
  auto gen = ctmc::Generator::from_rates(1, std::vector<Triplet>{});
  const core::SecondOrderMrm m(std::move(gen), Vec{1.0}, Vec{2.0}, Vec{1.0});
  const Simulator sim(m);
  SimulationOptions opts;
  opts.num_replications = 100000;
  opts.seed = 99;
  const auto est = sim.estimate_moments(2.0, opts);
  const auto exact = prob::brownian_raw_moments(1.0, 2.0, 2.0, 3);
  for (std::size_t j = 1; j <= 3; ++j)
    EXPECT_NEAR(est.moments[j], exact[j],
                5.0 * est.standard_errors[j] + 1e-9);
}

TEST(SimulatorTest, InputValidation) {
  const Simulator sim(two_state_model());
  somrm::prob::Rng rng(1);
  EXPECT_THROW(sim.sample_reward(-1.0, rng), std::invalid_argument);
  SimulationOptions bad;
  bad.num_replications = 0;
  EXPECT_THROW(sim.estimate_moments(1.0, bad), std::invalid_argument);
}

TEST(EmpiricalCdfTest, MatchesHandComputedValues) {
  std::vector<double> samples{3.0, 1.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(empirical_cdf(samples, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(empirical_cdf(samples, 1.0), 0.25);
  EXPECT_DOUBLE_EQ(empirical_cdf(samples, 2.0), 0.75);
  EXPECT_DOUBLE_EQ(empirical_cdf(samples, 10.0), 1.0);
  std::sort(samples.begin(), samples.end());
  EXPECT_DOUBLE_EQ(empirical_cdf(samples, 2.0, /*sorted=*/true), 0.75);
  EXPECT_THROW(empirical_cdf(std::vector<double>{}, 0.0),
               std::invalid_argument);
}

TEST(TrajectoryTest, PathStartsAtZeroAndCoversHorizon) {
  const auto path = sample_trajectory(two_state_model(), {});
  ASSERT_GE(path.size(), 3u);
  EXPECT_DOUBLE_EQ(path.front().time, 0.0);
  EXPECT_DOUBLE_EQ(path.front().reward, 0.0);
  EXPECT_NEAR(path.back().time, 2.0, 1e-12);
}

TEST(TrajectoryTest, TimesNonDecreasingAndStatesValid) {
  TrajectoryOptions opts;
  opts.horizon = 1.0;
  opts.sample_step = 0.005;
  opts.seed = 5;
  const auto model = two_state_model();
  const auto path = sample_trajectory(model, opts);
  for (std::size_t k = 1; k < path.size(); ++k) {
    EXPECT_GE(path[k].time, path[k - 1].time);
    EXPECT_LT(path[k].state, model.num_states());
  }
}

TEST(TrajectoryTest, FirstOrderPathHasMatchingSlopes) {
  // With sigma = 0 the reward between two consecutive points in the same
  // state grows exactly at that state's rate.
  auto gen = ctmc::Generator::from_rates(
      2, std::vector<Triplet>{{0, 1, 1.0}, {1, 0, 1.0}});
  const core::SecondOrderMrm m(std::move(gen), Vec{2.0, -1.0}, Vec{0.0, 0.0},
                               Vec{1.0, 0.0});
  TrajectoryOptions opts;
  opts.horizon = 1.0;
  opts.seed = 11;
  const auto path = sample_trajectory(m, opts);
  for (std::size_t k = 1; k < path.size(); ++k) {
    const double dt = path[k].time - path[k - 1].time;
    if (dt <= 0.0) continue;
    const double slope = (path[k].reward - path[k - 1].reward) / dt;
    const double rate = m.drifts()[path[k - 1].state];
    EXPECT_NEAR(slope, rate, 1e-9);
  }
}

TEST(TrajectoryTest, InputValidation) {
  TrajectoryOptions bad;
  bad.horizon = 0.0;
  EXPECT_THROW(sample_trajectory(two_state_model(), bad),
               std::invalid_argument);
  bad.horizon = 1.0;
  bad.sample_step = 0.0;
  EXPECT_THROW(sample_trajectory(two_state_model(), bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace somrm::sim
