// Tests for the validated CTMC generator wrapper.

#include "ctmc/generator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace somrm::ctmc {
namespace {

using linalg::Triplet;

Generator two_state(double a, double b) {
  const std::vector<Triplet> rates{{0, 1, a}, {1, 0, b}};
  return Generator::from_rates(2, rates);
}

TEST(GeneratorTest, FromRatesFillsDiagonal) {
  const Generator g = two_state(2.0, 3.0);
  EXPECT_DOUBLE_EQ(g.matrix().at(0, 0), -2.0);
  EXPECT_DOUBLE_EQ(g.matrix().at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(g.matrix().at(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(g.matrix().at(1, 1), -3.0);
}

TEST(GeneratorTest, ExitRatesAndUniformizationRate) {
  const Generator g = two_state(2.0, 3.0);
  EXPECT_EQ(g.exit_rates(), (linalg::Vec{2.0, 3.0}));
  EXPECT_DOUBLE_EQ(g.uniformization_rate(), 3.0);
}

TEST(GeneratorTest, RejectsNegativeOffDiagonal) {
  linalg::CsrBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(0, 1, -1.0);
  b.add(1, 1, 0.0);
  EXPECT_THROW(Generator(std::move(b).build()), std::invalid_argument);
}

TEST(GeneratorTest, RejectsNonZeroRowSums) {
  linalg::CsrBuilder b(2, 2);
  b.add(0, 0, -1.0);
  b.add(0, 1, 2.0);  // row sums to +1
  b.add(1, 1, 0.0);
  EXPECT_THROW(Generator(std::move(b).build()), std::invalid_argument);
}

TEST(GeneratorTest, RejectsNonSquareAndEmpty) {
  linalg::CsrBuilder b(2, 3);
  EXPECT_THROW(Generator(std::move(b).build()), std::invalid_argument);
  linalg::CsrBuilder e(0, 0);
  EXPECT_THROW(Generator(std::move(e).build()), std::invalid_argument);
}

TEST(GeneratorTest, FromRatesRejectsDiagonalAndNegativeEntries) {
  const std::vector<Triplet> diag{{0, 0, 1.0}};
  EXPECT_THROW(Generator::from_rates(2, diag), std::invalid_argument);
  const std::vector<Triplet> neg{{0, 1, -1.0}};
  EXPECT_THROW(Generator::from_rates(2, neg), std::invalid_argument);
}

TEST(GeneratorTest, AbsorbingStateAllowed) {
  const std::vector<Triplet> rates{{0, 1, 1.5}};  // state 1 absorbing
  const Generator g = Generator::from_rates(2, rates);
  EXPECT_DOUBLE_EQ(g.exit_rates()[1], 0.0);
  EXPECT_TRUE(g.jump_distribution(1).targets.empty());
}

TEST(GeneratorTest, UniformizedDtmcIsStochastic) {
  const Generator g = two_state(2.0, 3.0);
  const auto p = g.uniformized_dtmc();
  EXPECT_TRUE(p.is_substochastic(1e-12));
  const auto sums = p.row_sums();
  EXPECT_NEAR(sums[0], 1.0, 1e-14);
  EXPECT_NEAR(sums[1], 1.0, 1e-14);
  // Row with the max exit rate loses its self-loop.
  EXPECT_DOUBLE_EQ(p.at(1, 1), 0.0);
}

TEST(GeneratorTest, UniformizedDtmcWithInflatedRate) {
  const Generator g = two_state(2.0, 3.0);
  const auto p = g.uniformized_dtmc(6.0);
  EXPECT_NEAR(p.at(0, 0), 1.0 - 2.0 / 6.0, 1e-14);
  EXPECT_NEAR(p.at(1, 1), 1.0 - 3.0 / 6.0, 1e-14);
  EXPECT_THROW(g.uniformized_dtmc(1.0), std::invalid_argument);
}

TEST(GeneratorTest, JumpDistributionNormalized) {
  const std::vector<Triplet> rates{{0, 1, 1.0}, {0, 2, 3.0}, {1, 0, 1.0},
                                   {2, 0, 1.0}};
  const Generator g = Generator::from_rates(3, rates);
  const auto row = g.jump_distribution(0);
  ASSERT_EQ(row.targets.size(), 2u);
  EXPECT_EQ(row.targets[0], 1u);
  EXPECT_EQ(row.targets[1], 2u);
  EXPECT_DOUBLE_EQ(row.probabilities[0], 0.25);
  EXPECT_DOUBLE_EQ(row.probabilities[1], 0.75);
  EXPECT_THROW(g.jump_distribution(5), std::out_of_range);
}

TEST(GeneratorTest, AllAbsorbingChainHasZeroRate) {
  const Generator g =
      Generator::from_rates(3, std::vector<Triplet>{});
  EXPECT_DOUBLE_EQ(g.uniformization_rate(), 0.0);
  const auto p = g.uniformized_dtmc();
  EXPECT_DOUBLE_EQ(p.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(p.at(2, 2), 1.0);
}

}  // namespace
}  // namespace somrm::ctmc
