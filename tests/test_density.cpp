// Tests for the two distribution solvers: Corollary-2 transform inversion
// and the Corollary-1 PDE scheme. Anchored by exact Brownian densities and
// by the randomization moment solver.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/impulse_randomization.hpp"
#include "core/randomization.hpp"
#include "density/pde_solver.hpp"
#include "density/transform_solver.hpp"
#include "prob/normal.hpp"

namespace somrm::density {
namespace {

using linalg::Triplet;
using linalg::Vec;

core::SecondOrderMrm brownian_model(double r, double s2) {
  // 2-state chain with identical rewards: B(t) ~ N(rt, s2 t) exactly.
  auto gen = ctmc::Generator::from_rates(
      2, std::vector<Triplet>{{0, 1, 2.0}, {1, 0, 3.0}});
  return core::SecondOrderMrm(std::move(gen), Vec{r, r}, Vec{s2, s2},
                              Vec{1.0, 0.0});
}

core::SecondOrderMrm mixed_model() {
  auto gen = ctmc::Generator::from_rates(
      2, std::vector<Triplet>{{0, 1, 3.0}, {1, 0, 2.0}});
  return core::SecondOrderMrm(std::move(gen), Vec{2.0, -1.0}, Vec{0.5, 1.5},
                              Vec{1.0, 0.0});
}

TEST(DensityCommonTest, TrapezoidIntegralOfLinearFunction) {
  const Vec x{0.0, 1.0, 2.0, 3.0};
  const Vec f{0.0, 1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(integrate_trapezoid(x, f), 4.5);
  EXPECT_THROW(integrate_trapezoid(x, Vec{1.0}), std::invalid_argument);
}

TEST(DensityCommonTest, CdfFromDensityOfUniform) {
  // Uniform density 0.5 on [0, 2].
  Vec x(201), f(201, 0.5);
  for (std::size_t j = 0; j <= 200; ++j) x[j] = 0.01 * static_cast<double>(j);
  EXPECT_NEAR(cdf_from_density(x, f, 1.0), 0.5, 1e-12);
  EXPECT_NEAR(cdf_from_density(x, f, 0.355), 0.1775, 1e-12);
  EXPECT_DOUBLE_EQ(cdf_from_density(x, f, -1.0), 0.0);
}

TEST(TransformSolverTest, CharacteristicFunctionAtZeroIsOne) {
  const auto model = mixed_model();
  const auto phi = characteristic_function(model, 0.7, 0.0);
  for (const auto& v : phi) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(TransformSolverTest, CharacteristicFunctionBrownianClosedForm) {
  // Uniform rewards: phi(w) = exp(i w r t - w^2 s2 t / 2).
  const double r = 1.2, s2 = 0.8, t = 0.6, w = 1.7;
  const auto phi = characteristic_function(brownian_model(r, s2), t, w);
  const double mag = std::exp(-0.5 * w * w * s2 * t);
  EXPECT_NEAR(std::abs(phi[0]), mag, 1e-10);
  EXPECT_NEAR(std::arg(phi[0]), std::remainder(w * r * t, 2 * M_PI), 1e-10);
}

TEST(TransformSolverTest, DensityMatchesExactNormal) {
  const double r = 1.0, s2 = 2.0, t = 0.5;
  TransformSolverOptions opts;
  opts.grid = {-6.0, 8.0, 1024};
  const auto res = density_via_transform(brownian_model(r, s2), t, opts);
  for (std::size_t j = 100; j < 1000; j += 50) {
    const double exact = prob::normal_pdf(res.x[j], r * t, s2 * t);
    EXPECT_NEAR(res.weighted[j], exact, 1e-8 + 1e-8 * exact) << res.x[j];
  }
}

TEST(TransformSolverTest, DensityIntegratesToOneAndMatchesMoments) {
  const auto model = mixed_model();
  const double t = 0.5;
  TransformSolverOptions opts;
  opts.grid = {-8.0, 10.0, 2048};
  const auto res = density_via_transform(model, t, opts);

  EXPECT_NEAR(integrate_trapezoid(res.x, res.weighted), 1.0, 1e-9);

  const core::RandomizationMomentSolver solver(model);
  core::MomentSolverOptions mopts;
  mopts.epsilon = 1e-12;
  const auto ref = solver.solve(t, mopts);
  for (std::size_t j = 1; j <= 3; ++j)
    EXPECT_NEAR(raw_moment_from_density(res.x, res.weighted, j),
                ref.weighted[j], 1e-6 * (1.0 + std::abs(ref.weighted[j])))
        << "moment " << j;
}

TEST(TransformSolverTest, PerStateDensitiesAreConditionalOnInitialState) {
  const auto model = mixed_model();
  TransformSolverOptions opts;
  opts.grid = {-8.0, 10.0, 1024};
  const auto res = density_via_transform(model, 0.4, opts);
  // Each conditional density integrates to 1.
  for (std::size_t i = 0; i < 2; ++i)
    EXPECT_NEAR(integrate_trapezoid(res.x, res.per_state[i]), 1.0, 1e-8);
  // weighted = pi-mix; initial mass is on state 0 here.
  for (std::size_t j = 0; j < res.x.size(); j += 100)
    EXPECT_NEAR(res.weighted[j], res.per_state[0][j], 1e-12);
}

TEST(TransformSolverTest, ImpulseCharacteristicFunctionCompoundPoisson) {
  // Symmetric 2-state chain (Poisson jump process, rate lambda) with
  // normal impulses and zero rate reward: phi(w) =
  // exp(lambda t (e^{i w m - w^2 v/2} - 1)).
  const double lambda = 2.0, m = 0.5, v = 0.3, t = 0.8, w = 1.3;
  auto gen = ctmc::Generator::from_rates(
      2, std::vector<Triplet>{{0, 1, lambda}, {1, 0, lambda}});
  const core::SecondOrderMrm base(std::move(gen), Vec{0.0, 0.0},
                                  Vec{0.0, 0.0}, Vec{1.0, 0.0});
  const auto model =
      core::SecondOrderImpulseMrm::uniform_impulse(base, m, v);

  const auto phi = characteristic_function(model, t, w);
  const std::complex<double> jump_cf =
      std::exp(std::complex<double>(-0.5 * w * w * v, w * m));
  const std::complex<double> expected =
      std::exp(lambda * t * (jump_cf - 1.0));
  EXPECT_NEAR(phi[0].real(), expected.real(), 1e-10);
  EXPECT_NEAR(phi[0].imag(), expected.imag(), 1e-10);
}

TEST(TransformSolverTest, ImpulseDensityMatchesImpulseMoments) {
  auto gen = ctmc::Generator::from_rates(
      2, std::vector<Triplet>{{0, 1, 3.0}, {1, 0, 2.0}});
  const core::SecondOrderMrm base(std::move(gen), Vec{2.0, -1.0},
                                  Vec{0.5, 1.5}, Vec{1.0, 0.0});
  const auto model =
      core::SecondOrderImpulseMrm::uniform_impulse(base, 0.4, 0.2);
  const double t = 0.6;

  TransformSolverOptions opts;
  opts.grid = {-9.0, 11.0, 2048};
  const auto res = density_via_transform(model, t, opts);
  EXPECT_NEAR(integrate_trapezoid(res.x, res.weighted), 1.0, 1e-8);

  core::MomentSolverOptions mopts;
  mopts.epsilon = 1e-12;
  const auto ref = core::ImpulseMomentSolver(model).solve(t, mopts);
  for (std::size_t j = 1; j <= 3; ++j)
    EXPECT_NEAR(raw_moment_from_density(res.x, res.weighted, j),
                ref.weighted[j], 1e-5 * (1.0 + std::abs(ref.weighted[j])))
        << "moment " << j;
}

TEST(TransformSolverTest, InputValidation) {
  const auto model = mixed_model();
  TransformSolverOptions opts;
  opts.grid = {-5.0, 5.0, 1000};  // not a power of two
  EXPECT_THROW(density_via_transform(model, 1.0, opts),
               std::invalid_argument);
  opts.grid = {-5.0, 5.0, 1024};
  EXPECT_THROW(density_via_transform(model, 0.0, opts),
               std::invalid_argument);
}

TEST(PdeSolverTest, BrownianDensityReproduced) {
  const double r = 1.0, s2 = 1.5, t = 0.5;
  PdeSolverOptions opts;
  opts.grid = {-6.0, 8.0, 1401};
  opts.num_time_steps = 400;
  const auto res = density_via_pde(brownian_model(r, s2), t, opts);
  // Compare at a few interior points; the mollified delta and upwinding
  // cost some accuracy, so tolerances are loose but meaningful.
  for (double xq : {-1.0, 0.0, 0.5, 1.0, 2.0}) {
    const auto j = static_cast<std::size_t>(
        std::llround((xq - opts.grid.x_min) / opts.grid.dx()));
    const double exact = prob::normal_pdf(res.x[j], r * t, s2 * t);
    EXPECT_NEAR(res.weighted[j], exact, 0.02) << "x = " << xq;
  }
}

TEST(PdeSolverTest, MassConservedOnWideGrid) {
  PdeSolverOptions opts;
  opts.grid = {-10.0, 12.0, 1101};
  opts.num_time_steps = 300;
  const auto res = density_via_pde(mixed_model(), 0.5, opts);
  EXPECT_NEAR(integrate_trapezoid(res.x, res.weighted), 1.0, 5e-3);
  for (double v : res.weighted) EXPECT_GE(v, -1e-9);
}

TEST(PdeSolverTest, AgreesWithTransformSolver) {
  const auto model = mixed_model();
  const double t = 0.4;
  PdeSolverOptions popts;
  popts.grid = {-8.0, 10.0, 1801};
  popts.num_time_steps = 600;
  const auto pde = density_via_pde(model, t, popts);

  TransformSolverOptions topts;
  topts.grid = {-8.0, 10.0, 2048};
  const auto tr = density_via_transform(model, t, topts);

  // Compare coarse features: mean and stddev of the two densities.
  const double m1_p = raw_moment_from_density(pde.x, pde.weighted, 1);
  const double m1_t = raw_moment_from_density(tr.x, tr.weighted, 1);
  EXPECT_NEAR(m1_p, m1_t, 0.02);
  const double m2_p = raw_moment_from_density(pde.x, pde.weighted, 2);
  const double m2_t = raw_moment_from_density(tr.x, tr.weighted, 2);
  EXPECT_NEAR(m2_p, m2_t, 0.06);
}

TEST(PdeSolverTest, InputValidation) {
  const auto model = mixed_model();
  PdeSolverOptions opts;
  opts.num_time_steps = 0;
  EXPECT_THROW(density_via_pde(model, 1.0, opts), std::invalid_argument);
  opts.num_time_steps = 10;
  opts.theta = 0.2;
  EXPECT_THROW(density_via_pde(model, 1.0, opts), std::invalid_argument);
  opts.theta = 1.0;
  EXPECT_THROW(density_via_pde(model, 0.0, opts), std::invalid_argument);
}

}  // namespace
}  // namespace somrm::density
