// Tests for the section-6 sub-stochastic scaling transform.

#include "core/scaling.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "models/onoff.hpp"

namespace somrm::core {
namespace {

using linalg::Triplet;
using linalg::Vec;

SecondOrderMrm simple_model(Vec drifts, Vec variances) {
  auto gen = ctmc::Generator::from_rates(
      2, std::vector<Triplet>{{0, 1, 2.0}, {1, 0, 4.0}});
  return SecondOrderMrm(std::move(gen), std::move(drifts),
                        std::move(variances), Vec{1.0, 0.0});
}

TEST(ScalingTest, UniformizationRateAndStochasticQPrime) {
  const auto scaled = scale_model(simple_model({1.0, 2.0}, {0.5, 0.25}));
  EXPECT_DOUBLE_EQ(scaled.q, 4.0);
  EXPECT_TRUE(scaled.q_prime.is_substochastic(1e-12));
  const auto sums = scaled.q_prime.row_sums();
  EXPECT_NEAR(sums[0], 1.0, 1e-14);
  EXPECT_NEAR(sums[1], 1.0, 1e-14);
}

TEST(ScalingTest, SafePolicyKeepsRewardMatricesSubstochastic) {
  // Large variances relative to drift — the regime where the paper's
  // printed d breaks sub-stochasticity.
  const auto scaled =
      scale_model(simple_model({1.0, 2.0}, {30.0, 50.0}));
  EXPECT_TRUE(is_reward_scaling_substochastic(scaled));
  for (double r : scaled.r_prime) EXPECT_LE(r, 1.0 + 1e-12);
  for (double s : scaled.s_prime) EXPECT_LE(s, 1.0 + 1e-12);
}

TEST(ScalingTest, PaperPolicyCanViolateSubstochasticity) {
  const auto scaled = scale_model(simple_model({1.0, 2.0}, {30.0, 50.0}),
                                  DriftScalePolicy::kPaper);
  EXPECT_FALSE(is_reward_scaling_substochastic(scaled));
}

TEST(ScalingTest, PoliciesAgreeWhenDriftDominates) {
  // sigma_i <= r_i and q >= 1: the two d definitions coincide when
  // max sigma_i / sqrt(q) <= max r_i / q, i.e. sigma_max <= r_max/sqrt(q).
  const auto safe = scale_model(simple_model({8.0, 4.0}, {1.0, 0.5}));
  EXPECT_DOUBLE_EQ(safe.d, 8.0 / 4.0);  // r_max / q = 2 > sigma_max/sqrt(q)
}

TEST(ScalingTest, ScalingInvariantsReconstructInputs) {
  const Vec drifts{3.0, 1.0};
  const Vec vars{2.0, 5.0};
  const auto scaled = scale_model(simple_model(drifts, vars));
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(scaled.r_prime[i] * scaled.q * scaled.d, drifts[i], 1e-12);
    EXPECT_NEAR(scaled.s_prime[i] * scaled.q * scaled.d * scaled.d, vars[i],
                1e-12);
  }
}

TEST(ScalingTest, NegativeDriftsShiftedToZero) {
  const auto scaled = scale_model(simple_model({-2.0, 3.0}, {0.0, 0.0}));
  EXPECT_DOUBLE_EQ(scaled.shift, -2.0);
  // Shifted drifts are r_i - shift = {0, 5}; the smallest is zero.
  EXPECT_DOUBLE_EQ(scaled.r_prime[0], 0.0);
  EXPECT_GT(scaled.r_prime[1], 0.0);
}

TEST(ScalingTest, NonNegativeDriftsNotShifted) {
  const auto scaled = scale_model(simple_model({0.0, 3.0}, {0.0, 0.0}));
  EXPECT_DOUBLE_EQ(scaled.shift, 0.0);
}

TEST(ScalingTest, AllZeroRewardsGiveZeroD) {
  const auto scaled = scale_model(simple_model({0.0, 0.0}, {0.0, 0.0}));
  EXPECT_DOUBLE_EQ(scaled.d, 0.0);
  EXPECT_EQ(scaled.r_prime, (Vec{0.0, 0.0}));
  EXPECT_EQ(scaled.s_prime, (Vec{0.0, 0.0}));
}

TEST(ScalingTest, DegenerateChainWithoutTransitions) {
  auto gen = ctmc::Generator::from_rates(2, std::vector<Triplet>{});
  const SecondOrderMrm m(std::move(gen), Vec{1.0, 2.0}, Vec{0.5, 0.5},
                         Vec{1.0, 0.0});
  const auto scaled = scale_model(m);
  EXPECT_DOUBLE_EQ(scaled.q, 0.0);
  EXPECT_DOUBLE_EQ(scaled.d, 0.0);
}

TEST(ScalingTest, Table1ModelSafeDAccountsForVariance) {
  // The paper's small example with sigma^2 = 10: q = 128, r_max = 32,
  // sigma_max = sqrt(320). Safe d = max(32/128, sqrt(320/128)) = sqrt(2.5).
  const auto model =
      models::make_onoff_multiplexer(models::table1_params(10.0));
  const auto scaled = scale_model(model);
  EXPECT_DOUBLE_EQ(scaled.q, 128.0);
  EXPECT_NEAR(scaled.d, std::sqrt(2.5), 1e-12);
  EXPECT_TRUE(is_reward_scaling_substochastic(scaled));

  // The paper's d = max(32, sqrt(320))/128 = 0.25 is NOT sub-stochastic.
  const auto paper = scale_model(model, DriftScalePolicy::kPaper);
  EXPECT_DOUBLE_EQ(paper.d, 0.25);
  EXPECT_FALSE(is_reward_scaling_substochastic(paper));
}

}  // namespace
}  // namespace somrm::core
