// Tests for the moment-based distribution bounds (Figures 5-7 machinery):
// Jacobi coefficients from moments, Gauss/Gauss-Radau rules, and the sharp
// CDF bounds, validated on distributions with known moments and CDFs.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "bounds/moment_bounds.hpp"
#include "bounds/quadrature.hpp"
#include "prob/normal.hpp"

namespace somrm::bounds {
namespace {

std::vector<double> exponential_moments(std::size_t order) {
  // Exp(1): mu_k = k!.
  std::vector<double> m(order + 1);
  m[0] = 1.0;
  for (std::size_t k = 1; k <= order; ++k)
    m[k] = m[k - 1] * static_cast<double>(k);
  return m;
}

std::vector<double> uniform01_moments(std::size_t order) {
  // U(0,1): mu_k = 1/(k+1).
  std::vector<double> m(order + 1);
  for (std::size_t k = 0; k <= order; ++k)
    m[k] = 1.0 / static_cast<double>(k + 1);
  return m;
}

TEST(JacobiTest, StandardNormalRecurrenceIsHermite) {
  // Probabilists' Hermite: alpha_k = 0, beta_k = sqrt(k+1).
  const auto raw = somrm::prob::normal_raw_moments(0.0, 1.0, 12);
  const auto jc = jacobi_from_moments(raw);
  ASSERT_GE(jc.alpha.size(), 4u);
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_NEAR(static_cast<double>(jc.alpha[k]), 0.0, 1e-8);
    EXPECT_NEAR(static_cast<double>(jc.beta[k]),
                std::sqrt(static_cast<double>(k + 1)), 1e-8);
  }
}

TEST(JacobiTest, UniformRecurrenceIsLegendre) {
  // Shifted Legendre on (0,1): alpha_k = 1/2,
  // beta_k = (k+1) / (2 sqrt((2k+1)(2k+3))).
  const auto jc = jacobi_from_moments(uniform01_moments(12));
  ASSERT_GE(jc.alpha.size(), 4u);
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_NEAR(static_cast<double>(jc.alpha[k]), 0.5, 1e-9);
    const double expected =
        static_cast<double>(k + 1) /
        (2.0 * std::sqrt(static_cast<double>((2 * k + 1) * (2 * k + 3))));
    EXPECT_NEAR(static_cast<double>(jc.beta[k]), expected, 1e-9);
  }
}

TEST(JacobiTest, DegenerateTwoPointDistributionCapsOrder) {
  // X in {-1, +1} with equal probability: only 2 support points, so the
  // usable Jacobi order is capped at 2 even with many moments supplied.
  std::vector<double> raw(13);
  for (std::size_t k = 0; k <= 12; ++k) raw[k] = (k % 2 == 0) ? 1.0 : 0.0;
  const auto jc = jacobi_from_moments(raw);
  EXPECT_LE(jc.alpha.size(), 2u);
  const auto rule = gauss_rule(jc);
  ASSERT_EQ(rule.nodes.size(), 2u);
  EXPECT_NEAR(rule.nodes[0], -1.0, 1e-10);
  EXPECT_NEAR(rule.nodes[1], 1.0, 1e-10);
  EXPECT_NEAR(rule.weights[0], 0.5, 1e-10);
  EXPECT_NEAR(rule.weights[1], 0.5, 1e-10);
}

TEST(JacobiTest, InputValidation) {
  EXPECT_THROW(jacobi_from_moments(std::vector<double>{1.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(jacobi_from_moments(std::vector<double>{0.0, 0.0, 1.0}),
               std::invalid_argument);
}

TEST(GaussRuleTest, ReproducesMomentsExactly) {
  const auto raw = exponential_moments(10);
  const auto jc = jacobi_from_moments(raw);
  const auto rule = gauss_rule(jc);
  const std::size_t m = rule.nodes.size();
  // A Gauss rule with m nodes matches moments up to order 2m-1.
  for (std::size_t k = 0; k < 2 * m; ++k) {
    double acc = 0.0;
    for (std::size_t i = 0; i < m; ++i)
      acc += rule.weights[i] *
             std::pow(rule.nodes[i], static_cast<double>(k));
    EXPECT_NEAR(acc, raw[k], 1e-8 * raw[k] + 1e-10) << "moment " << k;
  }
}

TEST(GaussRuleTest, WeightsPositiveAndSumToMu0) {
  const auto jc = jacobi_from_moments(uniform01_moments(10));
  const auto rule = gauss_rule(jc, 2.5);
  double total = 0.0;
  for (double w : rule.weights) {
    EXPECT_GT(w, 0.0);
    total += w;
  }
  EXPECT_NEAR(total, 2.5, 1e-10);
}

TEST(GaussRadauTest, PreassignedNodePresent) {
  const auto jc = jacobi_from_moments(exponential_moments(10));
  for (double c : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    const auto rule = gauss_radau_rule(jc, c);
    double best = 1e9;
    for (double node : rule.nodes) best = std::min(best, std::abs(node - c));
    EXPECT_LT(best, 1e-8) << "c = " << c;
  }
}

TEST(GaussRadauTest, RuleStillMatchesMoments) {
  const auto raw = exponential_moments(8);
  const auto jc = jacobi_from_moments(raw);
  const auto rule = gauss_radau_rule(jc, 1.7);
  // Radau rule with m+1 nodes and one fixed node matches moments up to 2m.
  const std::size_t m = jc.alpha.size();
  for (std::size_t k = 0; k <= 2 * m; ++k) {
    double acc = 0.0;
    for (std::size_t i = 0; i < rule.nodes.size(); ++i)
      acc += rule.weights[i] *
             std::pow(rule.nodes[i], static_cast<double>(k));
    EXPECT_NEAR(acc, raw[k], 1e-7 * raw[k] + 1e-9) << "moment " << k;
  }
}

TEST(GaussRadauTest, CollisionWithGaussNodeHandled) {
  const auto jc = jacobi_from_moments(uniform01_moments(8));
  const auto gauss = gauss_rule(jc);
  // Request the Radau rule anchored exactly at an existing Gauss node.
  const auto rule = gauss_radau_rule(jc, gauss.nodes[1]);
  double best = 1e9;
  for (double node : rule.nodes)
    best = std::min(best, std::abs(node - gauss.nodes[1]));
  EXPECT_LT(best, 1e-9);
}

TEST(MomentBounderTest, BoundsBracketNormalCdf) {
  const auto raw = somrm::prob::normal_raw_moments(2.0, 4.0, 16);
  const MomentBounder bounder(raw);
  for (double x : {-2.0, 0.0, 1.0, 2.0, 3.0, 5.0, 7.0}) {
    const auto b = bounder.bounds_at(x);
    const double exact = somrm::prob::normal_cdf(x, 2.0, 4.0);
    EXPECT_LE(b.lower, exact + 1e-9) << "x = " << x;
    EXPECT_GE(b.upper, exact - 1e-9) << "x = " << x;
    EXPECT_LE(b.lower, b.upper);
  }
}

TEST(MomentBounderTest, BoundsBracketExponentialCdf) {
  const MomentBounder bounder(exponential_moments(14));
  for (double x : {0.1, 0.5, 1.0, 2.0, 4.0}) {
    const auto b = bounder.bounds_at(x);
    const double exact = 1.0 - std::exp(-x);
    EXPECT_LE(b.lower, exact + 1e-9);
    EXPECT_GE(b.upper, exact - 1e-9);
  }
}

TEST(MomentBounderTest, MoreMomentsTightenTheGap) {
  const auto raw_lo = somrm::prob::normal_raw_moments(0.0, 1.0, 6);
  const auto raw_hi = somrm::prob::normal_raw_moments(0.0, 1.0, 16);
  const MomentBounder lo(raw_lo), hi(raw_hi);
  const double x = 0.7;
  const auto bl = lo.bounds_at(x);
  const auto bh = hi.bounds_at(x);
  EXPECT_LT(bh.upper - bh.lower, bl.upper - bl.lower);
}

TEST(MomentBounderTest, LowerBoundsMonotoneInX) {
  const MomentBounder bounder(exponential_moments(12));
  double prev_lower = -1.0;
  for (double x = 0.1; x <= 5.0; x += 0.1) {
    const auto b = bounder.bounds_at(x);
    EXPECT_GE(b.lower, prev_lower - 1e-9);
    prev_lower = b.lower;
  }
}

TEST(MomentBounderTest, ExtremeTailsPinchToZeroOrOne) {
  const auto raw = somrm::prob::normal_raw_moments(0.0, 1.0, 12);
  const MomentBounder bounder(raw);
  const auto left = bounder.bounds_at(-100.0);
  EXPECT_NEAR(left.upper, 0.0, 1e-6);
  const auto right = bounder.bounds_at(100.0);
  EXPECT_NEAR(right.lower, 1.0, 1e-6);
}

TEST(MomentBounderTest, RejectsDegenerateInput) {
  EXPECT_THROW(MomentBounder(std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
  // Zero variance (X = 3 a.s.).
  EXPECT_THROW(MomentBounder(std::vector<double>{1.0, 3.0, 9.0}),
               std::invalid_argument);
}

TEST(MomentBounderTest, UnnormalizedMu0Accepted) {
  auto raw = somrm::prob::normal_raw_moments(1.0, 1.0, 10);
  for (double& v : raw) v *= 2.0;  // mu_0 = 2
  const MomentBounder bounder(raw);
  const auto b = bounder.bounds_at(1.0);
  EXPECT_LE(b.lower, 0.5 + 1e-9);
  EXPECT_GE(b.upper, 0.5 - 1e-9);
}

}  // namespace
}  // namespace somrm::bounds
