// Tests for the impulse-reward extension: model validation, the impulse
// randomization solver against compound-Poisson closed forms, agreement
// with the plain solver at zero impulses, and Monte Carlo cross-checks.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/impulse_randomization.hpp"
#include "core/moment_utils.hpp"
#include "core/ode_solver.hpp"
#include "core/randomization.hpp"
#include "linalg/parallel.hpp"
#include "prob/normal.hpp"
#include "sim/impulse_simulator.hpp"

namespace somrm::core {
namespace {

using linalg::CsrMatrix;
using linalg::Triplet;
using linalg::Vec;

/// Symmetric 2-state chain with rate lambda: its jump process is a plain
/// Poisson process of rate lambda, so a uniform impulse makes B(t) compound
/// Poisson — closed-form moments via cumulants kappa_j = lambda t E[X^j].
SecondOrderMrm symmetric_chain(double lambda, Vec drifts, Vec variances) {
  auto gen = ctmc::Generator::from_rates(
      2, std::vector<Triplet>{{0, 1, lambda}, {1, 0, lambda}});
  return SecondOrderMrm(std::move(gen), std::move(drifts),
                        std::move(variances), Vec{1.0, 0.0});
}

std::vector<double> compound_poisson_moments(double rate_t, double jump_mean,
                                             double jump_var,
                                             std::size_t order) {
  // kappa_j = lambda t * E[X^j] for compound Poisson with jumps X.
  const auto jump_moments =
      prob::normal_raw_moments(jump_mean, jump_var, order);
  std::vector<double> kappa(order);
  for (std::size_t j = 1; j <= order; ++j)
    kappa[j - 1] = rate_t * jump_moments[j];
  return moments_from_cumulants(kappa);
}

TEST(ImpulseModelTest, ValidationRejectsBadMatrices) {
  auto base = symmetric_chain(1.0, Vec{0.0, 0.0}, Vec{0.0, 0.0});
  // Impulse on a non-existent transition (diagonal).
  CsrMatrix diag = CsrMatrix::diagonal(Vec{1.0, 1.0});
  EXPECT_THROW(
      SecondOrderImpulseMrm(base, diag, CsrMatrix::from_triplets(2, 2, {})),
      std::invalid_argument);
  // Negative impulse variance.
  const std::vector<Triplet> neg{{0, 1, -0.5}};
  EXPECT_THROW(SecondOrderImpulseMrm(
                   base, CsrMatrix::from_triplets(2, 2, {}),
                   CsrMatrix::from_triplets(2, 2, neg)),
               std::invalid_argument);
  // Wrong shape.
  EXPECT_THROW(SecondOrderImpulseMrm(base,
                                     CsrMatrix::from_triplets(3, 3, {}),
                                     CsrMatrix::from_triplets(2, 2, {})),
               std::invalid_argument);
}

// The impulse solver routes through the shared validate_solver_inputs, so
// bad times/options fail fast with the same caller-tagged messages as the
// plain solver.
TEST(ImpulseValidationTest, RejectsBadSolverInputs) {
  auto base = symmetric_chain(1.0, Vec{0.0, 0.0}, Vec{0.0, 0.0});
  const SecondOrderImpulseMrm model(base, CsrMatrix::from_triplets(2, 2, {}),
                                    CsrMatrix::from_triplets(2, 2, {}));
  const ImpulseMomentSolver solver(model);
  EXPECT_THROW(solver.solve_multi({}), std::invalid_argument);
  EXPECT_THROW(solver.solve(-0.5), std::invalid_argument);
  EXPECT_THROW(solver.solve(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  MomentSolverOptions bad;
  bad.epsilon = -1.0;
  EXPECT_THROW(solver.solve(1.0, bad), std::invalid_argument);
  bad.epsilon = 1e-9;
  bad.center = std::numeric_limits<double>::infinity();
  EXPECT_THROW(solver.solve(1.0, bad), std::invalid_argument);
}

TEST(ImpulseModelTest, UniformImpulseBuilderCoversAllTransitions) {
  auto base = symmetric_chain(2.0, Vec{1.0, 1.0}, Vec{0.0, 0.0});
  const auto model =
      SecondOrderImpulseMrm::uniform_impulse(base, 0.7, 0.1);
  EXPECT_DOUBLE_EQ(model.impulse_mean().at(0, 1), 0.7);
  EXPECT_DOUBLE_EQ(model.impulse_mean().at(1, 0), 0.7);
  EXPECT_DOUBLE_EQ(model.impulse_var().at(0, 1), 0.1);
  EXPECT_FALSE(model.has_no_impulses());
  EXPECT_DOUBLE_EQ(model.max_abs_impulse_mean(), 0.7);
  EXPECT_DOUBLE_EQ(model.max_impulse_variance(), 0.1);
}

TEST(ImpulseSolverTest, ZeroImpulsesMatchPlainSolver) {
  auto gen = ctmc::Generator::from_rates(
      3, std::vector<Triplet>{{0, 1, 2.0}, {1, 2, 1.0}, {2, 0, 3.0},
                              {1, 0, 0.5}});
  const SecondOrderMrm base(std::move(gen), Vec{5.0, -1.0, 2.0},
                            Vec{0.1, 0.2, 0.3}, Vec{1.0, 0.0, 0.0});
  const SecondOrderImpulseMrm model =
      SecondOrderImpulseMrm::uniform_impulse(base, 0.0, 0.0);
  EXPECT_TRUE(model.has_no_impulses());

  MomentSolverOptions opts;
  opts.max_moment = 4;
  opts.epsilon = 1e-12;
  const auto plain = RandomizationMomentSolver(base).solve(0.8, opts);
  const auto impulse = ImpulseMomentSolver(model).solve(0.8, opts);
  for (std::size_t j = 0; j <= 4; ++j)
    EXPECT_NEAR(impulse.weighted[j], plain.weighted[j],
                1e-9 * (1.0 + std::abs(plain.weighted[j])))
        << "moment " << j;
}

TEST(ImpulseSolverTest, DeterministicImpulseCompoundPoisson) {
  // Zero rate reward + uniform deterministic impulse c on a symmetric
  // chain: B(t) = c * N(t), N(t) ~ Poisson(lambda t).
  const double lambda = 3.0, c = 0.8, t = 1.2;
  const auto model = SecondOrderImpulseMrm::uniform_impulse(
      symmetric_chain(lambda, Vec{0.0, 0.0}, Vec{0.0, 0.0}), c, 0.0);
  MomentSolverOptions opts;
  opts.max_moment = 5;
  opts.epsilon = 1e-12;
  const auto res = ImpulseMomentSolver(model).solve(t, opts);
  const auto exact = compound_poisson_moments(lambda * t, c, 0.0, 5);
  for (std::size_t j = 0; j <= 5; ++j)
    EXPECT_NEAR(res.weighted[j], exact[j],
                1e-8 * (1.0 + std::abs(exact[j])))
        << "moment " << j;
}

TEST(ImpulseSolverTest, NormalImpulseCompoundPoisson) {
  // Random N(m, w) impulses on the Poisson jump chain.
  const double lambda = 2.0, m = -0.4, w = 0.3, t = 0.9;
  const auto model = SecondOrderImpulseMrm::uniform_impulse(
      symmetric_chain(lambda, Vec{0.0, 0.0}, Vec{0.0, 0.0}), m, w);
  MomentSolverOptions opts;
  opts.max_moment = 4;
  opts.epsilon = 1e-12;
  const auto res = ImpulseMomentSolver(model).solve(t, opts);
  const auto exact = compound_poisson_moments(lambda * t, m, w, 4);
  for (std::size_t j = 0; j <= 4; ++j)
    EXPECT_NEAR(res.weighted[j], exact[j],
                1e-8 * (1.0 + std::abs(exact[j])))
        << "moment " << j;
}

TEST(ImpulseSolverTest, DriftPlusImpulseConvolution) {
  // Uniform drift r and variance s2 plus compound-Poisson impulses on the
  // symmetric chain: B(t) = N(rt, s2 t) + CP(lambda t), independent =>
  // cumulants add.
  const double lambda = 2.5, c = 0.6, r = 1.3, s2 = 0.4, t = 0.7;
  const auto model = SecondOrderImpulseMrm::uniform_impulse(
      symmetric_chain(lambda, Vec{r, r}, Vec{s2, s2}), c, 0.0);
  MomentSolverOptions opts;
  opts.max_moment = 4;
  opts.epsilon = 1e-12;
  const auto res = ImpulseMomentSolver(model).solve(t, opts);

  std::vector<double> kappa(4, 0.0);
  kappa[0] = r * t + lambda * t * c;                    // mean
  kappa[1] = s2 * t + lambda * t * c * c;               // variance
  kappa[2] = lambda * t * c * c * c;                    // 3rd cumulant
  kappa[3] = lambda * t * c * c * c * c;                // 4th cumulant
  const auto exact = moments_from_cumulants(kappa);
  for (std::size_t j = 0; j <= 4; ++j)
    EXPECT_NEAR(res.weighted[j], exact[j],
                1e-8 * (1.0 + std::abs(exact[j])))
        << "moment " << j;
}

TEST(ImpulseSolverTest, NegativeImpulseMeansSupported) {
  const double lambda = 4.0, c = -1.1, t = 0.6;
  const auto model = SecondOrderImpulseMrm::uniform_impulse(
      symmetric_chain(lambda, Vec{0.0, 0.0}, Vec{0.0, 0.0}), c, 0.0);
  MomentSolverOptions opts;
  opts.max_moment = 3;
  opts.epsilon = 1e-12;
  const auto res = ImpulseMomentSolver(model).solve(t, opts);
  const auto exact = compound_poisson_moments(lambda * t, c, 0.0, 3);
  for (std::size_t j = 1; j <= 3; ++j)
    EXPECT_NEAR(res.weighted[j], exact[j],
                1e-8 * (1.0 + std::abs(exact[j])));
  EXPECT_LT(res.weighted[1], 0.0);
}

TEST(ImpulseSolverTest, AsymmetricImpulsesAgainstSimulation) {
  // Structurally rich case with different impulses per transition: validate
  // against the Monte Carlo impulse simulator.
  auto gen = ctmc::Generator::from_rates(
      3, std::vector<Triplet>{{0, 1, 3.0}, {1, 2, 2.0}, {2, 0, 1.0},
                              {1, 0, 1.0}});
  const SecondOrderMrm base(gen, Vec{2.0, 0.5, -1.0}, Vec{0.2, 0.5, 0.1},
                            Vec{1.0, 0.0, 0.0});
  const std::vector<Triplet> means{{0, 1, 0.5}, {1, 2, -0.3}, {2, 0, 1.0}};
  const std::vector<Triplet> vars{{0, 1, 0.1}, {2, 0, 0.4}};
  const SecondOrderImpulseMrm model(
      base, linalg::CsrMatrix::from_triplets(3, 3, means),
      linalg::CsrMatrix::from_triplets(3, 3, vars));

  MomentSolverOptions opts;
  opts.epsilon = 1e-11;
  const auto res = ImpulseMomentSolver(model).solve(1.0, opts);

  sim::SimulationOptions sopts;
  sopts.num_replications = 200000;
  sopts.seed = 404;
  const auto est = sim::ImpulseSimulator(model).estimate_moments(1.0, sopts);
  for (std::size_t j = 1; j <= 3; ++j)
    EXPECT_NEAR(est.moments[j], res.weighted[j],
                5.0 * est.standard_errors[j] + 1e-9)
        << "moment " << j;
}

TEST(ImpulseSolverTest, MultiTimeMatchesSingleTime) {
  const auto model = SecondOrderImpulseMrm::uniform_impulse(
      symmetric_chain(2.0, Vec{1.0, -0.5}, Vec{0.3, 0.6}), 0.4, 0.05);
  const ImpulseMomentSolver solver(model);
  MomentSolverOptions opts;
  opts.epsilon = 1e-11;
  const std::vector<double> times{0.2, 0.8, 1.5};
  const auto multi = solver.solve_multi(times, opts);
  for (std::size_t i = 0; i < times.size(); ++i) {
    const auto single = solver.solve(times[i], opts);
    for (std::size_t j = 0; j <= 3; ++j)
      EXPECT_NEAR(multi[i].weighted[j], single.weighted[j],
                  1e-10 * (1.0 + std::abs(single.weighted[j])));
  }
}

TEST(ImpulseSolverTest, EpsilonHonored) {
  const auto model = SecondOrderImpulseMrm::uniform_impulse(
      symmetric_chain(3.0, Vec{1.0, 1.0}, Vec{0.5, 0.5}), 0.7, 0.2);
  const ImpulseMomentSolver solver(model);
  MomentSolverOptions loose, tight;
  loose.epsilon = 1e-5;
  tight.epsilon = 1e-13;
  const auto rl = solver.solve(1.0, loose);
  const auto rt = solver.solve(1.0, tight);
  for (std::size_t j = 0; j <= 3; ++j)
    EXPECT_NEAR(rl.weighted[j], rt.weighted[j],
                1e-5 * (1.0 + std::abs(rt.weighted[j])));
}

TEST(ImpulseSolverTest, CenterOptionOffsetsRateRewardOnly) {
  // center = r removes the drift contribution; impulses remain.
  const double lambda = 2.0, c = 0.5, r = 3.0, t = 0.8;
  const auto model = SecondOrderImpulseMrm::uniform_impulse(
      symmetric_chain(lambda, Vec{r, r}, Vec{0.0, 0.0}), c, 0.0);
  MomentSolverOptions opts;
  opts.max_moment = 3;
  opts.epsilon = 1e-12;
  opts.center = r;
  const auto res = ImpulseMomentSolver(model).solve(t, opts);
  const auto exact = compound_poisson_moments(lambda * t, c, 0.0, 3);
  for (std::size_t j = 0; j <= 3; ++j)
    EXPECT_NEAR(res.weighted[j], exact[j],
                1e-8 * (1.0 + std::abs(exact[j])));
}

TEST(ImpulseSolverTest, OdeBaselineAgrees) {
  // Third deterministic route: RK4 on the impulse-extended Theorem-2
  // system must match the impulse randomization solver.
  auto gen = ctmc::Generator::from_rates(
      3, std::vector<Triplet>{{0, 1, 3.0}, {1, 2, 2.0}, {2, 0, 1.0},
                              {1, 0, 1.0}});
  const SecondOrderMrm base(gen, Vec{2.0, 0.5, -1.0}, Vec{0.2, 0.5, 0.1},
                            Vec{1.0, 0.0, 0.0});
  const std::vector<Triplet> means{{0, 1, 0.5}, {1, 2, -0.3}, {2, 0, 1.0}};
  const std::vector<Triplet> vars{{0, 1, 0.1}, {2, 0, 0.4}};
  const SecondOrderImpulseMrm model(
      base, linalg::CsrMatrix::from_triplets(3, 3, means),
      linalg::CsrMatrix::from_triplets(3, 3, vars));

  MomentSolverOptions ropts;
  ropts.epsilon = 1e-12;
  const auto rand_res = ImpulseMomentSolver(model).solve(0.9, ropts);

  OdeSolverOptions oopts;
  oopts.num_steps = 300;
  const auto ode_res = solve_moments_ode(model, 0.9, oopts);
  for (std::size_t j = 0; j <= 3; ++j)
    EXPECT_NEAR(ode_res.weighted[j], rand_res.weighted[j],
                1e-7 * (1.0 + std::abs(rand_res.weighted[j])))
        << "moment " << j;
}

// ---------------------------------------------------------------------------
// Property sweep over jump rate, impulse size and horizon: the compound-
// Poisson closed form must hold across the grid, and the mean must be
// linear in the impulse mean.
// ---------------------------------------------------------------------------

class ImpulsePropertyTest
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(ImpulsePropertyTest, CompoundPoissonClosedFormHolds) {
  const auto [lambda, c, t] = GetParam();
  const auto model = SecondOrderImpulseMrm::uniform_impulse(
      symmetric_chain(lambda, Vec{0.0, 0.0}, Vec{0.0, 0.0}), c, 0.0);
  MomentSolverOptions opts;
  opts.max_moment = 4;
  opts.epsilon = 1e-12;
  const auto res = ImpulseMomentSolver(model).solve(t, opts);
  const auto exact = compound_poisson_moments(lambda * t, c, 0.0, 4);
  for (std::size_t j = 0; j <= 4; ++j)
    EXPECT_NEAR(res.weighted[j], exact[j],
                1e-7 * (1.0 + std::abs(exact[j])))
        << "lambda " << lambda << " c " << c << " t " << t << " moment " << j;
}

TEST_P(ImpulsePropertyTest, MeanLinearInImpulseMean) {
  const auto [lambda, c, t] = GetParam();
  MomentSolverOptions opts;
  opts.max_moment = 1;
  opts.epsilon = 1e-12;
  const auto base = symmetric_chain(lambda, Vec{1.0, 2.0}, Vec{0.1, 0.2});
  const auto m1 = ImpulseMomentSolver(SecondOrderImpulseMrm::uniform_impulse(
                                          base, c, 0.0))
                      .solve(t, opts)
                      .weighted[1];
  const auto m2 = ImpulseMomentSolver(SecondOrderImpulseMrm::uniform_impulse(
                                          base, 2.0 * c, 0.0))
                      .solve(t, opts)
                      .weighted[1];
  const auto m0 = ImpulseMomentSolver(SecondOrderImpulseMrm::uniform_impulse(
                                          base, 0.0, 0.0))
                      .solve(t, opts)
                      .weighted[1];
  // E[B] = E[B_rate] + E[#jumps] * c: linear in c.
  EXPECT_NEAR(m2 - m0, 2.0 * (m1 - m0), 1e-8 * (1.0 + std::abs(m2)));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ImpulsePropertyTest,
    ::testing::Combine(::testing::Values(0.5, 2.0, 8.0),   // lambda
                       ::testing::Values(-0.7, 0.3, 1.5),  // impulse mean
                       ::testing::Values(0.2, 1.0)));      // horizon

TEST(ImpulseSolverTest, PanelKernelBitIdenticalToLegacyKernel) {
  // The panel sweep (including the ascending-l impulse convolution) keeps
  // the legacy kernel's per-element arithmetic order, so it must match
  // bit-for-bit at every thread count.
  const auto model = SecondOrderImpulseMrm::uniform_impulse(
      symmetric_chain(2.0, Vec{1.0, -0.5}, Vec{0.3, 0.1}), 0.7, 0.2);
  const ImpulseMomentSolver solver(model);
  MomentSolverOptions opts;
  opts.max_moment = 3;
  opts.epsilon = 1e-10;
  const std::vector<double> times{0.3, 1.1};

  opts.kernel = SweepKernel::kFusedVectors;
  const auto reference = solver.solve_multi(times, opts);

  opts.kernel = SweepKernel::kPanel;
  for (std::size_t threads : {1u, 2u, 4u}) {
    linalg::set_num_threads(threads);
    const auto panel = solver.solve_multi(times, opts);
    ASSERT_EQ(panel.size(), reference.size());
    for (std::size_t ti = 0; ti < reference.size(); ++ti)
      for (std::size_t j = 0; j <= opts.max_moment; ++j) {
        EXPECT_EQ(panel[ti].weighted[j], reference[ti].weighted[j])
            << "threads " << threads << " t " << times[ti] << " moment " << j;
        for (std::size_t i = 0; i < model.num_states(); ++i)
          ASSERT_EQ(panel[ti].per_state[j][i], reference[ti].per_state[j][i]);
      }
  }
  linalg::set_num_threads(0);
}

TEST(ImpulseSimulatorTest, ReproducibleAndValidated) {
  const auto model = SecondOrderImpulseMrm::uniform_impulse(
      symmetric_chain(2.0, Vec{1.0, 2.0}, Vec{0.1, 0.2}), 0.3, 0.1);
  const sim::ImpulseSimulator simulator(model);
  const auto a = simulator.sample_rewards(1.0, 50, 9);
  const auto b = simulator.sample_rewards(1.0, 50, 9);
  EXPECT_EQ(a, b);
  somrm::prob::Rng rng(1);
  EXPECT_THROW(simulator.sample_reward(-1.0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace somrm::core
