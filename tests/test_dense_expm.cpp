// Tests for the dense matrix type and the Pade scaling-and-squaring matrix
// exponential.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "linalg/dense.hpp"
#include "linalg/expm.hpp"

namespace somrm::linalg {
namespace {

TEST(DenseTest, ArithmeticOperators) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = 2.0;
  DenseMatrix b = a;
  b *= 3.0;
  const DenseMatrix c = a + b;
  EXPECT_DOUBLE_EQ(c(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 8.0);
  const DenseMatrix d = c - a;
  EXPECT_DOUBLE_EQ(d(0, 0), 3.0);
}

TEST(DenseTest, MultiplyMatchesHandComputation) {
  DenseMatrix a(2, 3), b(3, 2);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
  double v = 1.0;
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = v++;
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 2; ++j) b(i, j) = v++;
  const DenseMatrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(DenseTest, SolveRecoversKnownSolution) {
  DenseMatrix a(3, 3);
  a(0, 0) = 4.0; a(0, 1) = 1.0; a(0, 2) = 0.0;
  a(1, 0) = 1.0; a(1, 1) = 3.0; a(1, 2) = 1.0;
  a(2, 0) = 0.0; a(2, 1) = 1.0; a(2, 2) = 2.0;
  const std::vector<double> x_true{1.0, -2.0, 3.0};
  const auto b = a.multiply(std::span<const double>(x_true));
  const auto x = a.solve(b);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-12);
}

TEST(DenseTest, SolveDetectsSingularMatrix) {
  DenseMatrix a(2, 2);  // all zeros
  std::vector<double> b{1.0, 1.0};
  EXPECT_THROW(a.solve(b), std::runtime_error);
}

TEST(DenseTest, Norm1IsMaxColumnSum) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = -3.0;
  a(1, 0) = 2.0; a(1, 1) = 1.0;
  EXPECT_DOUBLE_EQ(a.norm1(), 4.0);
  EXPECT_DOUBLE_EQ(a.norm_max(), 3.0);
}

TEST(ExpmTest, ExpOfZeroIsIdentity) {
  DenseMatrix z(3, 3);
  const DenseMatrix e = expm(z);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_NEAR(e(i, j), i == j ? 1.0 : 0.0, 1e-15);
}

TEST(ExpmTest, DiagonalMatrixExponentiatesElementwise) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = -2.5;
  const DenseMatrix e = expm(a);
  EXPECT_NEAR(e(0, 0), std::exp(1.0), 1e-13);
  EXPECT_NEAR(e(1, 1), std::exp(-2.5), 1e-13);
  EXPECT_NEAR(e(0, 1), 0.0, 1e-15);
}

TEST(ExpmTest, MatchesClosedFormTwoByTwoGenerator) {
  // Q = [-a a; b -b]: exp(Qt) known in closed form.
  const double a = 2.0, b = 3.0, t = 0.7;
  DenseMatrix q(2, 2);
  q(0, 0) = -a * t; q(0, 1) = a * t;
  q(1, 0) = b * t;  q(1, 1) = -b * t;
  const DenseMatrix e = expm(q);
  const double s = a + b;
  const double decay = std::exp(-s * t);
  EXPECT_NEAR(e(0, 0), (b + a * decay) / s, 1e-12);
  EXPECT_NEAR(e(0, 1), (a - a * decay) / s, 1e-12);
  EXPECT_NEAR(e(1, 0), (b - b * decay) / s, 1e-12);
  EXPECT_NEAR(e(1, 1), (a + b * decay) / s, 1e-12);
}

TEST(ExpmTest, InverseProperty) {
  DenseMatrix a(3, 3);
  a(0, 0) = 0.3; a(0, 1) = -1.2; a(0, 2) = 0.5;
  a(1, 0) = 0.7; a(1, 1) = 0.1;  a(1, 2) = -0.4;
  a(2, 0) = -0.2; a(2, 1) = 0.6; a(2, 2) = 0.9;
  DenseMatrix neg = a;
  neg *= -1.0;
  const DenseMatrix prod = expm(a).multiply(expm(neg));
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-12);
}

TEST(ExpmTest, LargeNormTriggersScalingAndStaysAccurate) {
  // 60 * nilpotent-ish matrix: exp([0 60; 0 0]) = [1 60; 0 1].
  DenseMatrix a(2, 2);
  a(0, 1) = 60.0;
  const DenseMatrix e = expm(a);
  EXPECT_NEAR(e(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(e(0, 1), 60.0, 1e-9);
  EXPECT_NEAR(e(1, 0), 0.0, 1e-12);
}

TEST(ExpmTest, ComplexRotationMatchesEulerFormula) {
  using C = std::complex<double>;
  DenseCMatrix a(1, 1);
  a(0, 0) = C(0.0, 1.3);  // exp(i 1.3)
  const DenseCMatrix e = expm(a);
  EXPECT_NEAR(e(0, 0).real(), std::cos(1.3), 1e-14);
  EXPECT_NEAR(e(0, 0).imag(), std::sin(1.3), 1e-14);
}

TEST(ExpmTest, ComplexGeneratorCharacteristicStructure) {
  // exp(t(Q + iwR)) h for a 1-state chain (Q = 0): e^{i w r t}.
  using C = std::complex<double>;
  const double w = 2.0, r = 1.5, t = 0.8;
  DenseCMatrix a(1, 1);
  a(0, 0) = C(0.0, w * r * t);
  const auto e = expm(a);
  EXPECT_NEAR(std::abs(e(0, 0)), 1.0, 1e-14);
  EXPECT_NEAR(std::arg(e(0, 0)), std::remainder(w * r * t, 2 * M_PI), 1e-12);
}

TEST(ExpmTest, RejectsNonSquare) {
  DenseMatrix a(2, 3);
  EXPECT_THROW(expm(a), std::invalid_argument);
}

}  // namespace
}  // namespace somrm::linalg
