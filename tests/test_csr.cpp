// Unit tests for the CSR sparse matrix and builder.

#include "linalg/csr.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace somrm::linalg {
namespace {

CsrMatrix small_matrix() {
  // [ 1 0 2 ]
  // [ 0 0 0 ]
  // [ 3 4 0 ]
  CsrBuilder b(3, 3);
  b.add(0, 0, 1.0);
  b.add(0, 2, 2.0);
  b.add(2, 0, 3.0);
  b.add(2, 1, 4.0);
  return std::move(b).build();
}

TEST(CsrBuilderTest, SumsDuplicatesAndSorts) {
  CsrBuilder b(2, 2);
  b.add(1, 0, 1.0);
  b.add(0, 1, 2.0);
  b.add(1, 0, 2.5);  // duplicate, summed
  const CsrMatrix m = std::move(b).build();
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 3.5);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
}

TEST(CsrBuilderTest, DropsExplicitZerosByDefault) {
  CsrBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(0, 0, -1.0);
  EXPECT_EQ(std::move(b).build().nnz(), 0u);
}

TEST(CsrBuilderTest, KeepsExplicitZerosOnRequest) {
  CsrBuilder b(2, 2);
  b.add(0, 0, 0.0);
  EXPECT_EQ(std::move(b).build(/*keep_explicit_zeros=*/true).nnz(), 1u);
}

TEST(CsrBuilderTest, RejectsOutOfRange) {
  CsrBuilder b(2, 2);
  EXPECT_THROW(b.add(2, 0, 1.0), std::out_of_range);
  EXPECT_THROW(b.add(0, 2, 1.0), std::out_of_range);
}

TEST(CsrMatrixTest, ValidatesRawArrays) {
  EXPECT_THROW(CsrMatrix(2, 2, {0, 1}, {0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(CsrMatrix(2, 2, {0, 1, 1}, {5}, {1.0}), std::invalid_argument);
  EXPECT_THROW(CsrMatrix(2, 2, {0, 2, 1}, {0, 1}, {1.0, 2.0}),
               std::invalid_argument);
}

TEST(CsrMatrixTest, RejectsUnsortedRowColumns) {
  // at()'s binary search and the fused row kernels assume strictly
  // increasing columns within every row.
  EXPECT_THROW(CsrMatrix(2, 3, {0, 2, 2}, {2, 0}, {1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(CsrMatrix(2, 3, {0, 1, 3}, {0, 2, 1}, {1.0, 2.0, 3.0}),
               std::invalid_argument);
}

TEST(CsrMatrixTest, RejectsDuplicateRowColumns) {
  EXPECT_THROW(CsrMatrix(1, 3, {0, 2}, {1, 1}, {1.0, 2.0}),
               std::invalid_argument);
}

TEST(CsrMatrixTest, AcceptsSortedRowColumns) {
  const CsrMatrix m(2, 3, {0, 2, 3}, {0, 2, 1}, {1.0, 2.0, 3.0});
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_EQ(m.at(0, 2), 2.0);
}

TEST(CsrMatrixTest, AtFindsStoredAndMissingEntries) {
  const CsrMatrix m = small_matrix();
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.at(2, 1), 4.0);
  EXPECT_THROW(m.at(3, 0), std::out_of_range);
}

TEST(CsrMatrixTest, MultiplyMatchesDense) {
  const CsrMatrix m = small_matrix();
  const Vec x{1.0, 2.0, 3.0};
  Vec y(3, 0.0);
  m.multiply(x, y);
  EXPECT_EQ(y, (Vec{7.0, 0.0, 11.0}));
}

TEST(CsrMatrixTest, MultiplyAddScalesAndAccumulates) {
  const CsrMatrix m = small_matrix();
  const Vec x{1.0, 2.0, 3.0};
  Vec y{1.0, 1.0, 1.0};
  m.multiply_add(2.0, x, y);
  EXPECT_EQ(y, (Vec{15.0, 1.0, 23.0}));
}

TEST(CsrMatrixTest, MultiplyTransposedMatchesTransposedMultiply) {
  const CsrMatrix m = small_matrix();
  const CsrMatrix mt = m.transposed();
  const Vec x{1.0, 2.0, 3.0};
  Vec y1(3, 0.0), y2(3, 0.0);
  m.multiply_transposed(x, y1);
  mt.multiply(x, y2);
  EXPECT_EQ(y1, y2);
}

TEST(CsrMatrixTest, IdentityAndDiagonalFactories) {
  const CsrMatrix eye = CsrMatrix::identity(3);
  EXPECT_EQ(eye.nnz(), 3u);
  EXPECT_DOUBLE_EQ(eye.at(1, 1), 1.0);

  const Vec d{1.0, 2.0, 3.0};
  const CsrMatrix diag = CsrMatrix::diagonal(d);
  EXPECT_EQ(diag.diagonal_vector(), d);
}

TEST(CsrMatrixTest, ScaledPlusIdentityFormsUniformizedMatrix) {
  // Q = [-2 2; 1 -1], q = 2 => P = Q/2 + I = [0 1; 0.5 0.5].
  CsrBuilder b(2, 2);
  b.add(0, 0, -2.0);
  b.add(0, 1, 2.0);
  b.add(1, 0, 1.0);
  b.add(1, 1, -1.0);
  const CsrMatrix q = std::move(b).build();
  const CsrMatrix p = q.scaled_plus_identity(0.5, 1.0);
  EXPECT_DOUBLE_EQ(p.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(p.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(p.at(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(p.at(1, 1), 0.5);
  EXPECT_TRUE(p.is_substochastic(1e-15));
}

TEST(CsrMatrixTest, ScaledPlusIdentityAddsMissingDiagonal) {
  CsrBuilder b(2, 2);
  b.add(0, 1, 1.0);  // no diagonal stored anywhere
  const CsrMatrix m = std::move(b).build();
  const CsrMatrix r = m.scaled_plus_identity(1.0, 5.0);
  EXPECT_DOUBLE_EQ(r.at(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(r.at(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(r.at(0, 1), 1.0);
}

TEST(CsrMatrixTest, RowSumsAndDiagnostics) {
  const CsrMatrix m = small_matrix();
  EXPECT_EQ(m.row_sums(), (Vec{3.0, 0.0, 7.0}));
  EXPECT_DOUBLE_EQ(m.mean_row_nnz(), 4.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.max_abs_diagonal(), 1.0);
  EXPECT_TRUE(m.is_nonnegative());
}

TEST(CsrMatrixTest, GeneratorChecks) {
  CsrBuilder b(2, 2);
  b.add(0, 0, -1.0);
  b.add(0, 1, 1.0);
  b.add(1, 0, 2.0);
  b.add(1, 1, -2.0);
  const CsrMatrix q = std::move(b).build();
  EXPECT_TRUE(q.has_zero_row_sums(1e-12));
  EXPECT_FALSE(q.is_nonnegative());
  EXPECT_FALSE(q.is_substochastic(1e-12));
}

TEST(CsrMatrixTest, ToDenseRoundTrip) {
  const CsrMatrix m = small_matrix();
  const auto dense = m.to_dense();
  EXPECT_DOUBLE_EQ(dense[0][2], 2.0);
  EXPECT_DOUBLE_EQ(dense[1][1], 0.0);
  EXPECT_THROW(m.to_dense(/*max_dim=*/2), std::invalid_argument);
}

TEST(CsrMatrixTest, FromTriplets) {
  const std::vector<Triplet> ts{{0, 0, 1.0}, {1, 1, 2.0}, {0, 0, 1.0}};
  const CsrMatrix m = CsrMatrix::from_triplets(2, 2, ts);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 2.0);
}

TEST(CsrMatrixTest, MultiplySizeChecks) {
  const CsrMatrix m = small_matrix();
  Vec bad(2, 0.0), good(3, 0.0);
  EXPECT_THROW(m.multiply(bad, good), std::invalid_argument);
  EXPECT_THROW(m.multiply(good, bad), std::invalid_argument);
}

}  // namespace
}  // namespace somrm::linalg
