// Unit tests for the CSR sparse matrix and builder.

#include "linalg/csr.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "linalg/panel.hpp"

namespace somrm::linalg {
namespace {

CsrMatrix small_matrix() {
  // [ 1 0 2 ]
  // [ 0 0 0 ]
  // [ 3 4 0 ]
  CsrBuilder b(3, 3);
  b.add(0, 0, 1.0);
  b.add(0, 2, 2.0);
  b.add(2, 0, 3.0);
  b.add(2, 1, 4.0);
  return std::move(b).build();
}

TEST(CsrBuilderTest, SumsDuplicatesAndSorts) {
  CsrBuilder b(2, 2);
  b.add(1, 0, 1.0);
  b.add(0, 1, 2.0);
  b.add(1, 0, 2.5);  // duplicate, summed
  const CsrMatrix m = std::move(b).build();
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 3.5);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
}

TEST(CsrBuilderTest, DropsExplicitZerosByDefault) {
  CsrBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(0, 0, -1.0);
  EXPECT_EQ(std::move(b).build().nnz(), 0u);
}

TEST(CsrBuilderTest, KeepsExplicitZerosOnRequest) {
  CsrBuilder b(2, 2);
  b.add(0, 0, 0.0);
  EXPECT_EQ(std::move(b).build(/*keep_explicit_zeros=*/true).nnz(), 1u);
}

TEST(CsrBuilderTest, RejectsOutOfRange) {
  CsrBuilder b(2, 2);
  EXPECT_THROW(b.add(2, 0, 1.0), std::out_of_range);
  EXPECT_THROW(b.add(0, 2, 1.0), std::out_of_range);
}

TEST(CsrMatrixTest, ValidatesRawArrays) {
  EXPECT_THROW(CsrMatrix(2, 2, {0, 1}, {0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(CsrMatrix(2, 2, {0, 1, 1}, {5}, {1.0}), std::invalid_argument);
  EXPECT_THROW(CsrMatrix(2, 2, {0, 2, 1}, {0, 1}, {1.0, 2.0}),
               std::invalid_argument);
}

TEST(CsrMatrixTest, RejectsUnsortedRowColumns) {
  // at()'s binary search and the fused row kernels assume strictly
  // increasing columns within every row.
  EXPECT_THROW(CsrMatrix(2, 3, {0, 2, 2}, {2, 0}, {1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(CsrMatrix(2, 3, {0, 1, 3}, {0, 2, 1}, {1.0, 2.0, 3.0}),
               std::invalid_argument);
}

TEST(CsrMatrixTest, RejectsDuplicateRowColumns) {
  EXPECT_THROW(CsrMatrix(1, 3, {0, 2}, {1, 1}, {1.0, 2.0}),
               std::invalid_argument);
}

TEST(CsrMatrixTest, AcceptsSortedRowColumns) {
  const CsrMatrix m(2, 3, {0, 2, 3}, {0, 2, 1}, {1.0, 2.0, 3.0});
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_EQ(m.at(0, 2), 2.0);
}

TEST(CsrMatrixTest, AtFindsStoredAndMissingEntries) {
  const CsrMatrix m = small_matrix();
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.at(2, 1), 4.0);
  EXPECT_THROW(m.at(3, 0), std::out_of_range);
}

TEST(CsrMatrixTest, MultiplyMatchesDense) {
  const CsrMatrix m = small_matrix();
  const Vec x{1.0, 2.0, 3.0};
  Vec y(3, 0.0);
  m.multiply(x, y);
  EXPECT_EQ(y, (Vec{7.0, 0.0, 11.0}));
}

TEST(CsrMatrixTest, MultiplyAddScalesAndAccumulates) {
  const CsrMatrix m = small_matrix();
  const Vec x{1.0, 2.0, 3.0};
  Vec y{1.0, 1.0, 1.0};
  m.multiply_add(2.0, x, y);
  EXPECT_EQ(y, (Vec{15.0, 1.0, 23.0}));
}

TEST(CsrMatrixTest, MultiplyTransposedMatchesTransposedMultiply) {
  const CsrMatrix m = small_matrix();
  const CsrMatrix mt = m.transposed();
  const Vec x{1.0, 2.0, 3.0};
  Vec y1(3, 0.0), y2(3, 0.0);
  m.multiply_transposed(x, y1);
  mt.multiply(x, y2);
  EXPECT_EQ(y1, y2);
}

TEST(CsrMatrixTest, IdentityAndDiagonalFactories) {
  const CsrMatrix eye = CsrMatrix::identity(3);
  EXPECT_EQ(eye.nnz(), 3u);
  EXPECT_DOUBLE_EQ(eye.at(1, 1), 1.0);

  const Vec d{1.0, 2.0, 3.0};
  const CsrMatrix diag = CsrMatrix::diagonal(d);
  EXPECT_EQ(diag.diagonal_vector(), d);
}

TEST(CsrMatrixTest, ScaledPlusIdentityFormsUniformizedMatrix) {
  // Q = [-2 2; 1 -1], q = 2 => P = Q/2 + I = [0 1; 0.5 0.5].
  CsrBuilder b(2, 2);
  b.add(0, 0, -2.0);
  b.add(0, 1, 2.0);
  b.add(1, 0, 1.0);
  b.add(1, 1, -1.0);
  const CsrMatrix q = std::move(b).build();
  const CsrMatrix p = q.scaled_plus_identity(0.5, 1.0);
  EXPECT_DOUBLE_EQ(p.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(p.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(p.at(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(p.at(1, 1), 0.5);
  EXPECT_TRUE(p.is_substochastic(1e-15));
}

TEST(CsrMatrixTest, ScaledPlusIdentityAddsMissingDiagonal) {
  CsrBuilder b(2, 2);
  b.add(0, 1, 1.0);  // no diagonal stored anywhere
  const CsrMatrix m = std::move(b).build();
  const CsrMatrix r = m.scaled_plus_identity(1.0, 5.0);
  EXPECT_DOUBLE_EQ(r.at(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(r.at(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(r.at(0, 1), 1.0);
}

TEST(CsrMatrixTest, RowSumsAndDiagnostics) {
  const CsrMatrix m = small_matrix();
  EXPECT_EQ(m.row_sums(), (Vec{3.0, 0.0, 7.0}));
  EXPECT_DOUBLE_EQ(m.mean_row_nnz(), 4.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.max_abs_diagonal(), 1.0);
  EXPECT_TRUE(m.is_nonnegative());
}

TEST(CsrMatrixTest, GeneratorChecks) {
  CsrBuilder b(2, 2);
  b.add(0, 0, -1.0);
  b.add(0, 1, 1.0);
  b.add(1, 0, 2.0);
  b.add(1, 1, -2.0);
  const CsrMatrix q = std::move(b).build();
  EXPECT_TRUE(q.has_zero_row_sums(1e-12));
  EXPECT_FALSE(q.is_nonnegative());
  EXPECT_FALSE(q.is_substochastic(1e-12));
}

TEST(CsrMatrixTest, ToDenseRoundTrip) {
  const CsrMatrix m = small_matrix();
  const auto dense = m.to_dense();
  EXPECT_DOUBLE_EQ(dense[0][2], 2.0);
  EXPECT_DOUBLE_EQ(dense[1][1], 0.0);
  EXPECT_THROW(m.to_dense(/*max_dim=*/2), std::invalid_argument);
}

TEST(CsrMatrixTest, FromTriplets) {
  const std::vector<Triplet> ts{{0, 0, 1.0}, {1, 1, 2.0}, {0, 0, 1.0}};
  const CsrMatrix m = CsrMatrix::from_triplets(2, 2, ts);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 2.0);
}

TEST(CsrMatrixTest, MultiplySizeChecks) {
  const CsrMatrix m = small_matrix();
  Vec bad(2, 0.0), good(3, 0.0);
  EXPECT_THROW(m.multiply(bad, good), std::invalid_argument);
  EXPECT_THROW(m.multiply(good, bad), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Panel container + CSR x panel SpMM.
// ---------------------------------------------------------------------------

// Deterministic pseudo-random sparse matrix (LCG, no <random> machinery) so
// large-matrix tests are reproducible across runs and platforms.
CsrMatrix pseudo_random_matrix(std::size_t rows, std::size_t cols,
                               std::size_t nnz_per_row) {
  CsrBuilder b(rows, cols);
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  const auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  for (std::size_t i = 0; i < rows; ++i) {
    if (i % 37 == 5) continue;  // leave some rows empty
    for (std::size_t k = 0; k < nnz_per_row; ++k) {
      const std::size_t j = next() % cols;
      const double v =
          (static_cast<double>(next() % 2001) - 1000.0) / 523.0;
      b.add(i, j, v);
    }
  }
  return std::move(b).build();
}

Panel pseudo_random_panel(std::size_t rows, std::size_t width) {
  Panel p(rows, width);
  std::uint64_t state = 0x243f6a8885a308d3ull;
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < width; ++j) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      p(i, j) = (static_cast<double>((state >> 33) % 4001) - 2000.0) / 777.0;
    }
  return p;
}

TEST(PanelTest, BasicsAndColumnAccess) {
  Panel p(3, 2, 1.5);
  EXPECT_EQ(p.rows(), 3u);
  EXPECT_EQ(p.width(), 2u);
  EXPECT_EQ(p.size(), 6u);
  EXPECT_DOUBLE_EQ(p(2, 1), 1.5);

  p.fill_col(1, -2.0);
  EXPECT_EQ(p.col(1), (Vec{-2.0, -2.0, -2.0}));
  EXPECT_EQ(p.col(0), (Vec{1.5, 1.5, 1.5}));

  p.set_col(0, Vec{1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(p.row_data(1)[0], 2.0);
  EXPECT_DOUBLE_EQ(p.row(1)[1], -2.0);

  Panel q(1, 1, 9.0);
  p.swap(q);
  EXPECT_EQ(p.rows(), 1u);
  EXPECT_DOUBLE_EQ(q(0, 0), 1.0);

  EXPECT_THROW(q.fill_col(5, 0.0), std::out_of_range);
  EXPECT_THROW(q.col(9), std::out_of_range);
  EXPECT_THROW(q.set_col(0, Vec{1.0}), std::invalid_argument);
}

TEST(CsrMatrixTest, MultiplyPanelMatchesIndependentSpmvs) {
  // The SpMM contract: column j of the output equals multiply() applied to
  // column j of the input — bit-for-bit, since the per-element accumulation
  // order (ascending k within a row) is identical.
  const CsrMatrix m = pseudo_random_matrix(200, 150, 6);
  const Panel x = pseudo_random_panel(150, 5);
  Panel y(200, 5);
  m.multiply_panel(x, y);
  for (std::size_t j = 0; j < 5; ++j) {
    Vec ref(200, 0.0);
    m.multiply(x.col(j), ref);
    EXPECT_EQ(y.col(j), ref) << "column " << j;
  }
}

TEST(CsrMatrixTest, MultiplyPanelWiderThanChunkMatchesIndependentSpmvs) {
  // Width 40 exceeds the kernel's stack-chunk width (32), exercising the
  // chunked re-stream path.
  const CsrMatrix m = pseudo_random_matrix(64, 64, 4);
  const Panel x = pseudo_random_panel(64, 40);
  Panel y(64, 40);
  m.multiply_panel(x, y);
  for (std::size_t j = 0; j < 40; ++j) {
    Vec ref(64, 0.0);
    m.multiply(x.col(j), ref);
    EXPECT_EQ(y.col(j), ref) << "column " << j;
  }
}

TEST(CsrMatrixTest, MultiplyPanelZeroesEmptyRows) {
  const CsrMatrix m = small_matrix();  // row 1 is empty
  Panel x(3, 2, 1.0);
  Panel y(3, 2, 7.0);  // stale garbage that must be overwritten
  m.multiply_panel(x, y);
  EXPECT_DOUBLE_EQ(y(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(y(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(y(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(y(2, 1), 7.0);
}

TEST(CsrMatrixTest, MultiplyPanelWidthOneMatchesMultiply) {
  // Degenerate width-1 panel is exactly an SpMV.
  const CsrMatrix m = pseudo_random_matrix(300, 300, 5);
  const Panel x = pseudo_random_panel(300, 1);
  Panel y(300, 1);
  m.multiply_panel(x, y);
  Vec ref(300, 0.0);
  m.multiply(x.col(0), ref);
  EXPECT_EQ(y.col(0), ref);
}

TEST(CsrMatrixTest, MultiplyPanelRowsWindowedAndAccumulating) {
  // multiply_panel_rows with shifted source/destination columns and
  // accumulate=true — the shape the impulse convolution uses.
  const CsrMatrix m = pseudo_random_matrix(50, 50, 3);
  const Panel x = pseudo_random_panel(50, 4);
  Panel y(50, 4, 0.5);
  m.multiply_panel_rows(x, y, 0, 50, /*src_col=*/1, /*dst_col=*/2,
                        /*count=*/2, /*accumulate=*/true);
  for (std::size_t j = 0; j < 2; ++j) {
    Vec ref(50, 0.0);
    m.multiply(x.col(1 + j), ref);
    for (std::size_t i = 0; i < 50; ++i)
      EXPECT_EQ(y(i, 2 + j), 0.5 + ref[i]) << i << "," << j;
  }
  // Untouched columns keep their old contents.
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(y(i, 0), 0.5);
    EXPECT_DOUBLE_EQ(y(i, 1), 0.5);
  }
}

TEST(CsrMatrixTest, MultiplyPanelSizeChecks) {
  const CsrMatrix m = small_matrix();
  Panel good_x(3, 2), good_y(3, 2);
  Panel bad_rows(2, 2), bad_width(3, 3);
  EXPECT_THROW(m.multiply_panel(bad_rows, good_y), std::invalid_argument);
  EXPECT_THROW(m.multiply_panel(good_x, bad_rows), std::invalid_argument);
  EXPECT_THROW(m.multiply_panel(good_x, bad_width), std::invalid_argument);
  EXPECT_THROW(m.multiply_panel_rows(good_x, good_y, 0, 3, 1, 1, 2, false),
               std::invalid_argument);  // window past the panel edge
}

TEST(CsrMatrixTest, MultiplyTransposedLargeMatchesTransposedMultiply) {
  // Above the serial-scatter cutoff (4096 rows) the transposed product runs
  // the blocked parallel path; its pairwise reduction reorders the sums, so
  // compare against the explicit transpose with a tolerance.
  const CsrMatrix m = pseudo_random_matrix(5000, 400, 4);
  const CsrMatrix mt = m.transposed();
  const Panel xp = pseudo_random_panel(5000, 1);
  const Vec x = xp.col(0);
  Vec y1(400, 0.0), y2(400, 0.0);
  m.multiply_transposed(x, y1);
  mt.multiply(x, y2);
  for (std::size_t c = 0; c < 400; ++c)
    EXPECT_NEAR(y1[c], y2[c], 1e-12 * (1.0 + std::abs(y2[c]))) << "col " << c;
}

}  // namespace
}  // namespace somrm::linalg
