// Tests for the concurrent serving engine (serve/engine.hpp) and the
// sweep-cache snapshots underneath it (serve/snapshot.hpp):
//
//  * admission control — synchronous validation, typed queue-full /
//    stopped rejections that never block, pinned in manual mode
//    (num_workers = 0 + drain_one()) where nothing races the assertions;
//  * key-grouped batching — same-sweep-key queries gathered across the
//    queue into one query_batch, the max_batch cap, stop() draining
//    accepted work;
//  * bit-identity under real concurrency — many client threads against a
//    worker-driven engine with a tiny cache budget (evictions racing
//    coalesced waiters), every streamed result EXPECT_EQ-equal to an
//    independent synchronous SolveSession. This is the test the TSan CI
//    leg runs to hunt data races in the engine;
//  * snapshot round trips — save/load bit-exactness via
//    core::bit_identical, warm starts that serve a cache HIT before any
//    sweep, missing-file cold starts, and rejection of corrupted,
//    truncated, version-mismatched, endian-mismatched snapshots;
//  * the PR's observability bugfixes — the SweepCacheStats::over_budget
//    flag (an over-budget cache used to be invisible) and the
//    session.cache.bytes / mem.peak_rss_bytes gauges resampling on
//    eviction and on the engine worker tick (they used to go stale on
//    long hit-only runs).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/randomization.hpp"
#include "core/solve_session.hpp"
#include "obs/export.hpp"
#include "obs/telemetry.hpp"
#include "serve/engine.hpp"
#include "serve/snapshot.hpp"

namespace somrm {
namespace {

using core::MomentResult;
using core::MomentSolverOptions;
using core::SessionQuery;
using core::SolveSession;
using core::SweepCache;
using linalg::Triplet;
using linalg::Vec;
using serve::RejectedError;
using serve::RejectReason;
using serve::ServeEngine;
using serve::ServeEngineOptions;
using serve::ServeResult;
using serve::SnapshotError;

/// Same irregular chain as test_solve_session: ring + chords, mixed-sign
/// drifts, mixed zero/positive variances.
core::SecondOrderMrm make_model(std::size_t n) {
  std::vector<Triplet> rates;
  for (std::size_t i = 0; i < n; ++i) {
    rates.push_back({i, (i + 1) % n, 1.0 + 0.3 * static_cast<double>(i % 5)});
    if (i % 3 == 0) rates.push_back({i, (i + 2) % n, 0.7});
  }
  Vec drifts(n, 0.0);
  Vec variances(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    drifts[i] = static_cast<double>(i % 4) - 1.0;
    variances[i] = (i % 2 == 0) ? 0.5 : 0.0;
  }
  return core::SecondOrderMrm(ctmc::Generator::from_rates(n, rates), drifts,
                              variances, linalg::unit_vec(n, 0));
}

Vec make_pi(std::size_t n, std::size_t seed) {
  Vec pi(n, 0.0);
  double total = 0.0;
  for (std::size_t s = 0; s < n; ++s) {
    pi[s] = 1.0 + static_cast<double>((seed * 7 + s * 3) % 11);
    total += pi[s];
  }
  for (std::size_t s = 0; s < n; ++s) pi[s] /= total;
  return pi;
}

Vec make_weights(std::size_t n, std::size_t seed) {
  Vec w(n, 0.0);
  for (std::size_t s = 0; s < n; ++s)
    w[s] = static_cast<double>((seed * 5 + s) % 4);
  return w;
}

std::shared_ptr<const SolveSession> make_session(
    std::size_t n, std::shared_ptr<SweepCache> cache,
    std::size_t max_moment = 3) {
  MomentSolverOptions opts;
  opts.max_moment = max_moment;
  opts.epsilon = 1e-9;
  return std::make_shared<const SolveSession>(
      make_model(n), std::vector<double>{0.25, 0.6, 1.1}, opts,
      std::move(cache));
}

void expect_results_equal(const MomentResult& got, const MomentResult& want) {
  ASSERT_EQ(got.weighted.size(), want.weighted.size());
  for (std::size_t j = 0; j < got.weighted.size(); ++j)
    EXPECT_EQ(got.weighted[j], want.weighted[j]) << "moment " << j;
  ASSERT_EQ(got.per_state.size(), want.per_state.size());
  for (std::size_t j = 0; j < got.per_state.size(); ++j) {
    ASSERT_EQ(got.per_state[j].size(), want.per_state[j].size());
    for (std::size_t i = 0; i < got.per_state[j].size(); ++i)
      EXPECT_EQ(got.per_state[j][i], want.per_state[j][i])
          << "moment " << j << " state " << i;
  }
  EXPECT_EQ(got.truncation_point, want.truncation_point);
  EXPECT_EQ(got.error_bound, want.error_bound);
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

// ---------------------------------------------------------------------------
// Admission control and grouping (manual mode: deterministic, no workers)
// ---------------------------------------------------------------------------

TEST(ServeEngineManualTest, SubmitValidatesSynchronously) {
  ServeEngineOptions opts;
  opts.num_workers = 0;
  ServeEngine engine(make_session(12, std::make_shared<SweepCache>()), opts);

  SessionQuery bad_time;
  bad_time.time_index = 99;
  EXPECT_THROW(engine.submit(bad_time), std::invalid_argument);

  SessionQuery bad_w;
  bad_w.terminal_weights = Vec(12, 0.0);  // all-zero weights are invalid
  EXPECT_THROW(engine.submit(bad_w), std::invalid_argument);

  // Nothing was admitted: the queue is empty and no counters moved.
  EXPECT_FALSE(engine.drain_one());
  EXPECT_EQ(engine.stats().submitted, 0u);
  EXPECT_EQ(engine.stats().queue_depth, 0u);
}

TEST(ServeEngineManualTest, QueueFullRejectsWithTypedErrorAndNeverBlocks) {
  ServeEngineOptions opts;
  opts.num_workers = 0;
  opts.max_queue = 2;
  ServeEngine engine(make_session(12, std::make_shared<SweepCache>()), opts);

  auto f1 = engine.submit(SessionQuery{});
  auto f2 = engine.submit(SessionQuery{});
  try {
    engine.submit(SessionQuery{});
    FAIL() << "third submit admitted past max_queue = 2";
  } catch (const RejectedError& e) {
    EXPECT_EQ(e.reason(), RejectReason::kQueueFull);
  }
  EXPECT_EQ(engine.stats().rejected_queue_full, 1u);
  EXPECT_EQ(engine.stats().submitted, 2u);
  EXPECT_EQ(engine.stats().queue_depth, 2u);

  // Draining frees capacity; the retry is admitted.
  EXPECT_TRUE(engine.drain_one());
  auto f3 = engine.submit(SessionQuery{});
  EXPECT_TRUE(engine.drain_one());
  f1.get();
  f2.get();
  f3.get();
  EXPECT_EQ(engine.stats().completed, 3u);
}

TEST(ServeEngineManualTest, StoppedEngineRejectsNewWork) {
  ServeEngineOptions opts;
  opts.num_workers = 0;
  ServeEngine engine(make_session(12, std::make_shared<SweepCache>()), opts);
  engine.stop();
  try {
    engine.submit(SessionQuery{});
    FAIL() << "stopped engine admitted work";
  } catch (const RejectedError& e) {
    EXPECT_EQ(e.reason(), RejectReason::kStopped);
  }
  EXPECT_EQ(engine.stats().rejected_stopped, 1u);
}

TEST(ServeEngineManualTest, DrainOneGroupsBySweepKeyAcrossQueueOrder) {
  const auto cache = std::make_shared<SweepCache>();
  const auto session = make_session(12, cache);
  ServeEngineOptions opts;
  opts.num_workers = 0;
  ServeEngine engine(session, opts);

  // Interleave two sweep keys: plain, weighted, plain, weighted. The first
  // drain must execute BOTH plain queries as one group (gathered across
  // the weighted one sitting between them), the second both weighted.
  SessionQuery plain_a;
  SessionQuery plain_b;
  plain_b.time_index = 1;
  plain_b.initial = make_pi(12, 3);
  SessionQuery weighted_a;
  weighted_a.terminal_weights = make_weights(12, 1);
  SessionQuery weighted_b = weighted_a;
  weighted_b.time_index = 2;

  auto fp_a = engine.submit(plain_a);
  auto fw_a = engine.submit(weighted_a);
  auto fp_b = engine.submit(plain_b);
  auto fw_b = engine.submit(weighted_b);

  ASSERT_TRUE(engine.drain_one());
  ServeResult rp_a = fp_a.get();
  ServeResult rp_b = fp_b.get();
  EXPECT_EQ(rp_a.batch_size, 2u);
  EXPECT_EQ(rp_b.batch_size, 2u);
  EXPECT_EQ(rp_a.record.sweep_key, rp_b.record.sweep_key);
  // The weighted queries have not run: one sweep so far, futures pending.
  EXPECT_EQ(session->cache_stats().misses, 1u);

  ASSERT_TRUE(engine.drain_one());
  ServeResult rw_a = fw_a.get();
  ServeResult rw_b = fw_b.get();
  EXPECT_EQ(rw_a.batch_size, 2u);
  EXPECT_EQ(rw_a.record.sweep_key, rw_b.record.sweep_key);
  EXPECT_NE(rw_a.record.sweep_key, rp_a.record.sweep_key);
  EXPECT_FALSE(engine.drain_one());

  const auto stats = engine.stats();
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.largest_batch, 2u);
  EXPECT_EQ(stats.completed, 4u);

  // Every streamed result is bit-identical to the synchronous session.
  expect_results_equal(rp_a.result, session->query(plain_a));
  expect_results_equal(rp_b.result, session->query(plain_b));
  expect_results_equal(rw_a.result, session->query(weighted_a));
  expect_results_equal(rw_b.result, session->query(weighted_b));
}

TEST(ServeEngineManualTest, MaxBatchBoundsGroupSize) {
  ServeEngineOptions opts;
  opts.num_workers = 0;
  opts.max_batch = 2;
  ServeEngine engine(make_session(12, std::make_shared<SweepCache>()), opts);

  std::vector<std::future<ServeResult>> futures;
  for (std::size_t i = 0; i < 3; ++i)
    futures.push_back(engine.submit(SessionQuery{}));
  ASSERT_TRUE(engine.drain_one());
  EXPECT_EQ(futures[0].get().batch_size, 2u);
  EXPECT_EQ(futures[1].get().batch_size, 2u);
  ASSERT_TRUE(engine.drain_one());
  EXPECT_EQ(futures[2].get().batch_size, 1u);
  EXPECT_EQ(engine.stats().largest_batch, 2u);
}

TEST(ServeEngineManualTest, CallbackFlavourDeliversResultAndRecord) {
  const auto session = make_session(12, std::make_shared<SweepCache>());
  ServeEngineOptions opts;
  opts.num_workers = 0;
  ServeEngine engine(session, opts);

  SessionQuery q;
  q.time_index = 1;
  std::promise<ServeResult> delivered;
  engine.submit(q, [&](ServeResult&& r, std::exception_ptr error) {
    EXPECT_EQ(error, nullptr);
    delivered.set_value(std::move(r));
  });
  ASSERT_TRUE(engine.drain_one());
  ServeResult r = delivered.get_future().get();
  expect_results_equal(r.result, session->query(q));
  EXPECT_EQ(r.record.time_index, 1u);
  EXPECT_FALSE(r.record.sweep_key.empty());
  EXPECT_GE(r.total_ns, r.queue_ns);
  EXPECT_EQ(engine.stats().completed, 1u);
}

TEST(ServeEngineManualTest, StopDrainsAcceptedWork) {
  ServeEngineOptions opts;
  opts.num_workers = 0;
  ServeEngine engine(make_session(12, std::make_shared<SweepCache>()), opts);
  auto f1 = engine.submit(SessionQuery{});
  SessionQuery qw;
  qw.terminal_weights = make_weights(12, 2);
  auto f2 = engine.submit(qw);
  engine.stop();
  // Accepted work was executed, not dropped: both futures are ready.
  EXPECT_EQ(f1.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(f2.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  f1.get();
  f2.get();
  EXPECT_EQ(engine.stats().completed, 2u);
  EXPECT_EQ(engine.stats().queue_depth, 0u);
}

// ---------------------------------------------------------------------------
// Concurrency: the TSan stress surface
// ---------------------------------------------------------------------------

// Many client threads against a running engine whose cache budget is too
// small to hold every sweep — submissions, the batching-window linger,
// evictions, and coalesced waiters all race. Every result must still be
// bit-identical to an independent synchronous session. (The CI sanitize
// matrix runs this under TSan; the assertions also pin correctness in
// plain builds.)
TEST(ServeEngineConcurrencyTest, StressedMixedLoadStaysBitIdentical) {
  const std::size_t n = 16;
  const auto cache = std::make_shared<SweepCache>();
  const auto session = make_session(n, cache);

  // Reference results from a session the engine never touches.
  const auto ref_session = make_session(n, std::make_shared<SweepCache>());
  std::vector<SessionQuery> combos;
  for (std::size_t ti = 0; ti < 3; ++ti)
    for (std::size_t w = 0; w < 3; ++w)
      for (std::size_t p = 0; p < 2; ++p) {
        SessionQuery q;
        q.time_index = ti;
        if (p == 1) q.initial = make_pi(n, ti + w);
        if (w > 0) q.terminal_weights = make_weights(n, w);
        combos.push_back(std::move(q));
      }
  const std::vector<MomentResult> refs = ref_session->query_batch(combos);

  // Budget of one retained sweep: three distinct keys keep evicting each
  // other while coalesced waiters still hold the shared entries.
  cache->set_byte_budget(1);
  const auto budget_probe = session->query(combos[0]);
  cache->set_byte_budget(session->cache_stats().bytes);

  ServeEngineOptions opts;
  opts.num_workers = 3;
  opts.batch_window_ns = 50'000;
  opts.max_queue = 64;
  ServeEngine engine(session, opts);

  constexpr std::size_t kClients = 4;
  constexpr std::size_t kPerClient = 40;
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c)
    clients.emplace_back([&, c] {
      for (std::size_t i = 0; i < kPerClient; ++i) {
        const std::size_t combo = (c * kPerClient + i) % combos.size();
        std::future<ServeResult> fut;
        for (;;) {
          try {
            fut = engine.submit(combos[combo]);
            break;
          } catch (const RejectedError&) {
            std::this_thread::yield();
          }
        }
        const ServeResult r = fut.get();
        if (r.result.weighted != refs[combo].weighted ||
            r.result.truncation_point != refs[combo].truncation_point ||
            r.result.error_bound != refs[combo].error_bound)
          mismatches.fetch_add(1);
        if (r.total_ns < r.queue_ns) mismatches.fetch_add(1);
      }
    });
  for (std::thread& t : clients) t.join();
  engine.stop();

  EXPECT_EQ(mismatches.load(), 0u);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.submitted, kClients * kPerClient);
  EXPECT_EQ(stats.completed, kClients * kPerClient);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GT(session->cache_stats().evictions, 0u);
  (void)budget_probe;
}

TEST(ServeEngineConcurrencyTest, TinyQueueRetriesEventuallyComplete) {
  const auto session = make_session(12, std::make_shared<SweepCache>());
  ServeEngineOptions opts;
  opts.num_workers = 1;
  opts.max_queue = 1;
  opts.batch_window_ns = 0;
  ServeEngine engine(session, opts);

  constexpr std::size_t kClients = 3;
  constexpr std::size_t kPerClient = 20;
  std::atomic<std::size_t> completed{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c)
    clients.emplace_back([&] {
      for (std::size_t i = 0; i < kPerClient; ++i) {
        for (;;) {
          try {
            engine.submit(SessionQuery{}).get();
            break;
          } catch (const RejectedError&) {
            std::this_thread::yield();
          }
        }
        completed.fetch_add(1);
      }
    });
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(completed.load(), kClients * kPerClient);
  EXPECT_EQ(engine.stats().completed, kClients * kPerClient);
}

// ---------------------------------------------------------------------------
// Snapshots: round trip, warm start, defect rejection
// ---------------------------------------------------------------------------

/// Populates @p cache with three sweeps (plain + two weight classes).
void populate(const SolveSession& session) {
  session.query(SessionQuery{});
  SessionQuery w1;
  w1.terminal_weights = make_weights(session.model().num_states(), 1);
  session.query(w1);
  SessionQuery w2;
  w2.terminal_weights = make_weights(session.model().num_states(), 2);
  session.query(w2);
}

TEST(SnapshotTest, SaveLoadRoundTripIsBitExact) {
  const auto cache = std::make_shared<SweepCache>();
  const auto session = make_session(12, cache);
  populate(*session);
  const std::string path = temp_path("somrm_snap_roundtrip.bin");

  EXPECT_EQ(serve::save_snapshot(*cache, path), 3u);
  SweepCache reloaded;
  EXPECT_EQ(serve::load_snapshot(reloaded, path), 3u);
  std::remove(path.c_str());

  const auto before = cache->entries_snapshot();
  const auto after = reloaded.entries_snapshot();
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    // Same keys in the same recency order, and every retained sweep is
    // bit-identical (times, scalars, panels — everything finalize reads).
    EXPECT_EQ(before[i].first, after[i].first) << i;
    EXPECT_TRUE(core::bit_identical(*before[i].second, *after[i].second))
        << "entry " << i;
  }
}

TEST(SnapshotTest, WarmStartServesHitBeforeAnySweep) {
  const auto cache = std::make_shared<SweepCache>();
  const auto session = make_session(12, cache);
  SessionQuery q;
  q.time_index = 2;
  const MomentResult original = session->query(q);
  const std::string path = temp_path("somrm_snap_warm.bin");
  serve::save_snapshot(*cache, path);

  // Simulated restart: fresh cache, fresh session, same model content.
  const auto cache2 = std::make_shared<SweepCache>();
  const auto session2 = make_session(12, cache2);
  EXPECT_EQ(serve::load_snapshot(*cache2, path), 1u);
  std::remove(path.c_str());

  const MomentResult warm = session2->query(q);
  // The first query after the restart was a HIT: no sweep ran, and the
  // finalize against the reloaded panels reproduced the original bits.
  EXPECT_EQ(cache2->stats().misses, 0u);
  EXPECT_EQ(cache2->stats().hits, 1u);
  expect_results_equal(warm, original);
}

TEST(SnapshotTest, MissingFileIsAColdStart) {
  SweepCache cache;
  EXPECT_EQ(serve::load_snapshot(
                cache, temp_path("somrm_snap_does_not_exist.bin")),
            0u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(SnapshotTest, EmptyCacheRoundTrips) {
  SweepCache cache;
  const std::string path = temp_path("somrm_snap_empty.bin");
  EXPECT_EQ(serve::save_snapshot(cache, path), 0u);
  SweepCache reloaded;
  EXPECT_EQ(serve::load_snapshot(reloaded, path), 0u);
  std::remove(path.c_str());
}

class SnapshotDefectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto cache = std::make_shared<SweepCache>();
    const auto session = make_session(10, cache);
    session->query(SessionQuery{});
    // Each case runs as its own ctest process; a shared file name would let
    // a parallel sibling's SetUp/TearDown clobber this one's patched bytes.
    path_ = temp_path(
        std::string("somrm_snap_defect_") +
        ::testing::UnitTest::GetInstance()->current_test_info()->name() +
        ".bin");
    serve::save_snapshot(*cache, path_);
    std::ifstream in(path_, std::ios::binary);
    ASSERT_TRUE(in.good());
    bytes_.assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
    ASSERT_GT(bytes_.size(), 24u);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void rewrite(const std::string& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  void expect_load_fails_with(const std::string& needle) {
    SweepCache cache;
    try {
      serve::load_snapshot(cache, path_);
      FAIL() << "defective snapshot accepted";
    } catch (const SnapshotError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
    EXPECT_EQ(cache.stats().entries, 0u);
  }

  std::string path_;
  std::string bytes_;
};

TEST_F(SnapshotDefectTest, RejectsBadMagic) {
  std::string bad = bytes_;
  bad[0] = 'X';
  rewrite(bad);
  expect_load_fails_with("bad magic");
}

TEST_F(SnapshotDefectTest, RejectsFormatVersionMismatch) {
  // The version word sits right after the 8-byte magic. Bumping it must be
  // reported as a version mismatch (checked BEFORE the checksum, so a
  // future-format file gets the actionable error, not "corrupted").
  std::string bad = bytes_;
  bad[8] = static_cast<char>(serve::kSnapshotFormatVersion + 1);
  rewrite(bad);
  expect_load_fails_with("format version mismatch");
}

TEST_F(SnapshotDefectTest, RejectsEndiannessMismatch) {
  std::string bad = bytes_;
  std::swap(bad[12], bad[15]);  // byte-swap the 0x01020304 probe word
  std::swap(bad[13], bad[14]);
  rewrite(bad);
  expect_load_fails_with("endianness mismatch");
}

TEST_F(SnapshotDefectTest, RejectsCorruptedPayload) {
  std::string bad = bytes_;
  bad[bytes_.size() / 2] ^= 0x40;  // flip one payload bit
  rewrite(bad);
  expect_load_fails_with("checksum mismatch");
}

TEST_F(SnapshotDefectTest, RejectsTruncation) {
  rewrite(bytes_.substr(0, bytes_.size() - 9));
  expect_load_fails_with("snapshot:");
}

TEST_F(SnapshotDefectTest, RejectsHeaderOnlyFile) {
  rewrite(bytes_.substr(0, 16));
  expect_load_fails_with("truncated");
}

TEST(SnapshotTest, ResidentEntriesWinOverSnapshot) {
  const auto cache = std::make_shared<SweepCache>();
  const auto session = make_session(12, cache);
  populate(*session);
  const std::string path = temp_path("somrm_snap_resident.bin");
  serve::save_snapshot(*cache, path);

  // A cache that already holds one of the keys: the load must keep the
  // resident entry and only insert the two missing ones.
  const auto cache2 = std::make_shared<SweepCache>();
  const auto session2 = make_session(12, cache2);
  session2->query(SessionQuery{});
  const auto resident = cache2->entries_snapshot();
  ASSERT_EQ(resident.size(), 1u);
  EXPECT_EQ(serve::load_snapshot(*cache2, path), 2u);
  std::remove(path.c_str());
  EXPECT_EQ(cache2->stats().entries, 3u);
  for (const auto& [key, value] : cache2->entries_snapshot()) {
    if (key == resident[0].first) {
      EXPECT_EQ(value, resident[0].second);
    }
  }
}

TEST(SnapshotTest, ReloadRespectsByteBudgetKeepingMruTail) {
  const auto cache = std::make_shared<SweepCache>();
  const auto session = make_session(12, cache);
  populate(*session);
  const auto saved = cache->entries_snapshot();  // MRU first
  ASSERT_EQ(saved.size(), 3u);
  const std::string path = temp_path("somrm_snap_budget.bin");
  serve::save_snapshot(*cache, path);

  // Destination budget of one entry: only the snapshot's most recently
  // used sweep survives the reload.
  SweepCache small(saved[0].second->byte_size());
  serve::load_snapshot(small, path);
  std::remove(path.c_str());
  const auto kept = small.entries_snapshot();
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].first, saved[0].first);
}

TEST(SnapshotTest, EngineLifecycleSavesAndWarmStarts) {
  const std::string path = temp_path("somrm_snap_engine.bin");
  std::remove(path.c_str());
  SessionQuery q;
  q.terminal_weights = make_weights(12, 1);
  MomentResult original;
  {
    ServeEngineOptions opts;
    opts.num_workers = 0;
    opts.snapshot_path = path;  // missing file: cold start, not an error
    ServeEngine engine(make_session(12, std::make_shared<SweepCache>()), opts);
    auto fut = engine.submit(q);
    ASSERT_TRUE(engine.drain_one());
    original = fut.get().result;
    EXPECT_EQ(engine.save_snapshot(), 1u);
  }
  {
    const auto cache = std::make_shared<SweepCache>();
    ServeEngineOptions opts;
    opts.num_workers = 0;
    opts.snapshot_path = path;
    ServeEngine engine(make_session(12, cache), opts);
    EXPECT_EQ(cache->stats().entries, 1u);  // warmed in the constructor
    auto fut = engine.submit(q);
    ASSERT_TRUE(engine.drain_one());
    expect_results_equal(fut.get().result, original);
    EXPECT_EQ(cache->stats().misses, 0u);
    EXPECT_EQ(cache->stats().hits, 1u);
  }
  std::remove(path.c_str());

  // No snapshot_path configured -> save_snapshot is a logic error.
  ServeEngineOptions bare;
  bare.num_workers = 0;
  ServeEngine engine(make_session(12, std::make_shared<SweepCache>()), bare);
  EXPECT_THROW(engine.save_snapshot(), std::logic_error);
}

TEST(SnapshotTest, CorruptSnapshotRefusesEngineStart) {
  const std::string path = temp_path("somrm_snap_corrupt_start.bin");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "SOMRMSWP garbage that is certainly not a valid snapshot";
  }
  ServeEngineOptions opts;
  opts.num_workers = 0;
  opts.snapshot_path = path;
  EXPECT_THROW(
      ServeEngine(make_session(12, std::make_shared<SweepCache>()), opts),
      SnapshotError);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Observability bugfixes: over-budget flag, gauge resampling
// ---------------------------------------------------------------------------

TEST(SweepCacheOverBudgetTest, FlagSurfacesThroughStatsResultAndReport) {
  const auto cache = std::make_shared<SweepCache>(/*byte_budget=*/1);
  const auto session = make_session(12, cache);
  // One sweep larger than the whole budget: retained anyway (the MRU entry
  // is never evicted), which used to leave the cache silently over budget.
  const MomentResult r = session->query(SessionQuery{});
  const auto stats = cache->stats();
  EXPECT_GT(stats.bytes, stats.byte_budget);
  EXPECT_TRUE(stats.over_budget);
  EXPECT_TRUE(r.stats.cache_over_budget);
  EXPECT_NE(obs::report(r.stats).find("over budget"), std::string::npos);

  // Plenty of budget: the flag stays down and the report line is clean.
  const auto roomy_cache = std::make_shared<SweepCache>();
  const auto roomy = make_session(12, roomy_cache);
  const MomentResult r2 = roomy->query(SessionQuery{});
  EXPECT_FALSE(roomy_cache->stats().over_budget);
  EXPECT_FALSE(r2.stats.cache_over_budget);
  EXPECT_EQ(obs::report(r2.stats).find("over budget"), std::string::npos);
}

TEST(GaugeResampleTest, EvictionResamplesCacheBytesAndPeakRss) {
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  const auto cache = std::make_shared<SweepCache>();
  const auto session = make_session(12, cache);
  session->query(SessionQuery{});
  const std::size_t one_entry = cache->stats().bytes;
  ASSERT_GT(one_entry, 0u);

  // Poison both gauges, then trigger an eviction: evict_locked must
  // resample them (they used to keep whatever the last query set, so a
  // budget-shrink eviction left session.cache.bytes showing freed memory).
  obs::gauge("session.cache.bytes").set(-1);
  obs::gauge("mem.peak_rss_bytes").set(-1);
  cache->set_byte_budget(one_entry);
  SessionQuery qw;
  qw.terminal_weights = make_weights(12, 1);
  session->query(qw);
  ASSERT_GT(cache->stats().evictions, 0u);
  EXPECT_EQ(obs::gauge("session.cache.bytes").value(),
            static_cast<std::int64_t>(cache->stats().bytes));
  // Peak RSS can grow between the resample and this read (the sampler is a
  // live /proc read), so assert the poison was replaced by a real sample:
  // positive, and no larger than the monotone current peak.
  const std::int64_t rss = obs::gauge("mem.peak_rss_bytes").value();
  EXPECT_GT(rss, 0);
  EXPECT_LE(rss, obs::peak_rss_bytes());
}

TEST(GaugeResampleTest, EngineWorkerTickResamplesGauges) {
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  const auto cache = std::make_shared<SweepCache>();
  const auto session = make_session(12, cache);
  ServeEngineOptions opts;
  opts.num_workers = 0;
  ServeEngine engine(session, opts);
  auto fut = engine.submit(SessionQuery{});
  ASSERT_TRUE(engine.drain_one());
  fut.get();

  // Poison the gauges after the batch, then run a pure-hit batch: even
  // with no sweep and no eviction, the worker tick must refresh both (the
  // stale-gauge fix — a long hit-only serving run used to export the
  // values from its last miss).
  obs::gauge("session.cache.bytes").set(-1);
  obs::gauge("mem.peak_rss_bytes").set(-1);
  auto fut2 = engine.submit(SessionQuery{});
  ASSERT_TRUE(engine.drain_one());
  fut2.get();
  EXPECT_EQ(fut2.valid(), false);
  EXPECT_EQ(obs::gauge("session.cache.bytes").value(),
            static_cast<std::int64_t>(cache->stats().bytes));
  // Same bound-not-equality check as above: peak RSS may move under the
  // test's feet, but a resampled gauge is positive and never exceeds it.
  const std::int64_t rss = obs::gauge("mem.peak_rss_bytes").value();
  EXPECT_GT(rss, 0);
  EXPECT_LE(rss, obs::peak_rss_bytes());
}

}  // namespace
}  // namespace somrm
