// Tests for the long-run reward statistics (deviation matrix, rate, bias,
// asymptotic variance rate) against closed forms and the exact solver.

#include "core/asymptotics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/moment_utils.hpp"
#include "core/randomization.hpp"
#include "ctmc/stationary.hpp"

namespace somrm::core {
namespace {

using linalg::Triplet;
using linalg::Vec;

SecondOrderMrm two_state(double a, double b, Vec r, Vec s, Vec init) {
  auto gen = ctmc::Generator::from_rates(
      2, std::vector<Triplet>{{0, 1, a}, {1, 0, b}});
  return SecondOrderMrm(std::move(gen), std::move(r), std::move(s),
                        std::move(init));
}

TEST(DeviationMatrixTest, DefiningPropertiesHold) {
  auto gen = ctmc::Generator::from_rates(
      3, std::vector<Triplet>{{0, 1, 1.0}, {1, 2, 2.0}, {2, 0, 0.7},
                              {1, 0, 0.4}});
  const Vec pi = ctmc::stationary_distribution_gth(gen);
  const auto d = deviation_matrix(gen, pi);

  // Q D = Pi - I and D h = 0 and pi D = 0.
  const auto dense_q = gen.matrix().to_dense();
  for (std::size_t i = 0; i < 3; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < 3; ++j) {
      double qd = 0.0;
      for (std::size_t k = 0; k < 3; ++k) qd += dense_q[i][k] * d(k, j);
      const double expected = pi[j] - (i == j ? 1.0 : 0.0);
      EXPECT_NEAR(qd, expected, 1e-12) << i << "," << j;
      row_sum += d(i, j);
    }
    EXPECT_NEAR(row_sum, 0.0, 1e-12);
  }
  for (std::size_t j = 0; j < 3; ++j) {
    double pid = 0.0;
    for (std::size_t i = 0; i < 3; ++i) pid += pi[i] * d(i, j);
    EXPECT_NEAR(pid, 0.0, 1e-12);
  }
}

TEST(AsymptoticsTest, TwoStateVarianceRateClosedForm) {
  // Markov-modulated rate reward (sigma = 0): the asymptotic variance rate
  // is 2 (r0 - r1)^2 a b / (a + b)^3.
  const double a = 2.0, b = 3.0, r0 = 5.0, r1 = 1.0;
  const auto model =
      two_state(a, b, Vec{r0, r1}, Vec{0.0, 0.0}, Vec{1.0, 0.0});
  const auto stats = asymptotic_reward_stats(model);
  const double s = a + b;
  EXPECT_NEAR(stats.rate, (b * r0 + a * r1) / s, 1e-12);
  EXPECT_NEAR(stats.variance_rate,
              2.0 * (r0 - r1) * (r0 - r1) * a * b / (s * s * s), 1e-10);
}

TEST(AsymptoticsTest, BrownianVarianceAddsLinearly) {
  // Adding per-state variances sigma_i^2 adds pi . s to the variance rate.
  const double a = 2.0, b = 3.0;
  const auto base =
      two_state(a, b, Vec{5.0, 1.0}, Vec{0.0, 0.0}, Vec{1.0, 0.0});
  const auto noisy =
      two_state(a, b, Vec{5.0, 1.0}, Vec{2.0, 4.0}, Vec{1.0, 0.0});
  const auto s_base = asymptotic_reward_stats(base);
  const auto s_noisy = asymptotic_reward_stats(noisy);
  const double pi0 = b / (a + b), pi1 = a / (a + b);
  EXPECT_NEAR(s_noisy.variance_rate - s_base.variance_rate,
              pi0 * 2.0 + pi1 * 4.0, 1e-10);
  EXPECT_NEAR(s_noisy.rate, s_base.rate, 1e-12);
}

TEST(AsymptoticsTest, MatchesExactSolverAtLargeT) {
  auto gen = ctmc::Generator::from_rates(
      4, std::vector<Triplet>{{0, 1, 2.0}, {1, 2, 1.0}, {2, 3, 2.5},
                              {3, 0, 1.5}, {2, 0, 0.5}, {1, 0, 0.3}});
  const SecondOrderMrm model(std::move(gen), Vec{4.0, 2.0, -1.0, 0.5},
                             Vec{0.5, 0.0, 1.5, 0.25},
                             Vec{1.0, 0.0, 0.0, 0.0});
  const auto stats = asymptotic_reward_stats(model);

  const RandomizationMomentSolver solver(model);
  MomentSolverOptions opts;
  opts.max_moment = 2;
  opts.epsilon = 1e-12;
  const double t = 400.0;
  const auto res = solver.solve(t, opts);

  // Mean: rho t + bias.
  EXPECT_NEAR(res.weighted[1], stats.rate * t + stats.bias,
              1e-6 * std::abs(res.weighted[1]));
  // Variance rate.
  const double var = variance_from_raw(res.weighted);
  EXPECT_NEAR(var / t, stats.variance_rate,
              3e-2 * stats.variance_rate + 1e-9);
}

TEST(AsymptoticsTest, BiasDependsOnInitialState) {
  // Starting in the high-reward state must give a larger bias than starting
  // in the low-reward state; starting from stationarity gives zero bias.
  const double a = 2.0, b = 3.0;
  const Vec r{5.0, 1.0};
  const auto from_high = two_state(a, b, r, Vec{0.0, 0.0}, Vec{1.0, 0.0});
  const auto from_low = two_state(a, b, r, Vec{0.0, 0.0}, Vec{0.0, 1.0});
  const double pi0 = b / (a + b);
  const auto from_pi =
      two_state(a, b, r, Vec{0.0, 0.0}, Vec{pi0, 1.0 - pi0});

  EXPECT_GT(asymptotic_reward_stats(from_high).bias,
            asymptotic_reward_stats(from_low).bias);
  EXPECT_NEAR(asymptotic_reward_stats(from_pi).bias, 0.0, 1e-10);
}

TEST(AsymptoticsTest, ReducibleChainRejected) {
  auto gen = ctmc::Generator::from_rates(
      2, std::vector<Triplet>{{0, 1, 1.0}});
  const SecondOrderMrm model(std::move(gen), Vec{1.0, 2.0}, Vec{0.0, 0.0},
                             Vec{1.0, 0.0});
  EXPECT_THROW(asymptotic_reward_stats(model), std::runtime_error);
}

}  // namespace
}  // namespace somrm::core
