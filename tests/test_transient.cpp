// Tests for the uniformization transient solver, anchored by the 2-state
// closed form and by the dense matrix exponential.

#include "ctmc/transient.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "linalg/dense.hpp"
#include "linalg/expm.hpp"

namespace somrm::ctmc {
namespace {

using linalg::Triplet;
using linalg::Vec;

Generator two_state(double a, double b) {
  return Generator::from_rates(2,
                               std::vector<Triplet>{{0, 1, a}, {1, 0, b}});
}

// p0(t) starting from state 0: b/(a+b) + a/(a+b) e^{-(a+b)t}.
double two_state_p0(double a, double b, double t) {
  return b / (a + b) + a / (a + b) * std::exp(-(a + b) * t);
}

TEST(TransientTest, TwoStateClosedForm) {
  const double a = 2.0, b = 3.0;
  const Generator g = two_state(a, b);
  const Vec init{1.0, 0.0};
  for (double t : {0.0, 0.1, 0.5, 1.0, 5.0}) {
    const Vec p = transient_distribution(g, init, t);
    EXPECT_NEAR(p[0], two_state_p0(a, b, t), 1e-11) << "t = " << t;
    EXPECT_NEAR(p[0] + p[1], 1.0, 1e-12);
  }
}

TEST(TransientTest, MatchesDenseMatrixExponential) {
  // Random-ish 4-state generator.
  const std::vector<Triplet> rates{{0, 1, 1.0}, {0, 3, 0.5}, {1, 2, 2.0},
                                   {2, 0, 0.7}, {2, 3, 0.3}, {3, 1, 1.2}};
  const Generator g = Generator::from_rates(4, rates);
  const double t = 0.8;

  linalg::DenseMatrix qt(4, 4);
  const auto dense = g.matrix().to_dense();
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) qt(i, j) = dense[i][j] * t;
  const auto e = linalg::expm(qt);

  const Vec init{0.25, 0.25, 0.25, 0.25};
  const Vec p = transient_distribution(g, init, t);
  for (std::size_t j = 0; j < 4; ++j) {
    double expected = 0.0;
    for (std::size_t i = 0; i < 4; ++i) expected += init[i] * e(i, j);
    EXPECT_NEAR(p[j], expected, 1e-10);
  }
}

TEST(TransientTest, ResultIsProbabilityVector) {
  const Generator g = two_state(5.0, 1.0);
  const Vec p = transient_distribution(g, Vec{0.3, 0.7}, 2.0);
  EXPECT_GE(p[0], 0.0);
  EXPECT_GE(p[1], 0.0);
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-12);
}

TEST(TransientTest, TimeZeroReturnsInitial) {
  const Generator g = two_state(1.0, 1.0);
  const Vec init{0.4, 0.6};
  EXPECT_EQ(transient_distribution(g, init, 0.0), init);
}

TEST(TransientTest, AbsorbingChainStaysPut) {
  const Generator g =
      Generator::from_rates(2, std::vector<Triplet>{});
  const Vec init{0.25, 0.75};
  const Vec p = transient_distribution(g, init, 10.0);
  EXPECT_EQ(p, init);
}

TEST(TransientTest, MultiTimeMatchesSingleTime) {
  const Generator g = two_state(2.0, 3.0);
  const Vec init{1.0, 0.0};
  const std::vector<double> times{0.1, 0.5, 2.0};
  const auto multi = transient_distribution_multi(g, init, times);
  ASSERT_EQ(multi.size(), 3u);
  for (std::size_t i = 0; i < times.size(); ++i) {
    const Vec single = transient_distribution(g, init, times[i]);
    EXPECT_NEAR(multi[i][0], single[0], 1e-13);
    EXPECT_NEAR(multi[i][1], single[1], 1e-13);
  }
}

TEST(TransientTest, ConvergesToStationaryForLargeT) {
  const double a = 2.0, b = 3.0;
  const Generator g = two_state(a, b);
  const Vec p = transient_distribution(g, Vec{1.0, 0.0}, 50.0);
  EXPECT_NEAR(p[0], b / (a + b), 1e-10);
  EXPECT_NEAR(p[1], a / (a + b), 1e-10);
}

TEST(TransientTest, InputValidation) {
  const Generator g = two_state(1.0, 1.0);
  EXPECT_THROW(transient_distribution(g, Vec{1.0}, 1.0),
               std::invalid_argument);
  EXPECT_THROW(transient_distribution(g, Vec{0.5, 0.4}, 1.0),
               std::invalid_argument);
  EXPECT_THROW(transient_distribution(g, Vec{1.0, 0.0}, -1.0),
               std::invalid_argument);
  TransientOptions bad;
  bad.epsilon = 0.0;
  EXPECT_THROW(transient_distribution(g, Vec{1.0, 0.0}, 1.0, bad),
               std::invalid_argument);
}

TEST(TransientTest, TighterEpsilonTightensResult) {
  const Generator g = two_state(4.0, 1.0);
  const Vec init{1.0, 0.0};
  TransientOptions loose, tight;
  loose.epsilon = 1e-4;
  tight.epsilon = 1e-14;
  const Vec pl = transient_distribution(g, init, 1.0, loose);
  const Vec pt = transient_distribution(g, init, 1.0, tight);
  const double exact = two_state_p0(4.0, 1.0, 1.0);
  EXPECT_LE(std::abs(pt[0] - exact), std::abs(pl[0] - exact) + 1e-12);
  EXPECT_NEAR(pt[0], exact, 1e-13);
}

}  // namespace
}  // namespace somrm::ctmc
