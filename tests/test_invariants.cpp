// Tests for the SOMRM_CHECKED invariant layer (core/invariants.hpp).
//
// Each paper-derived probe gets a deliberately broken input and the test
// asserts the probe fires with the right check name and diagnostic detail
// (state index, moment order, step). The file also proves the layer's
// central contract: enabling the probes never perturbs solver output
// (bit-identity on a valid model).
//
// The file compiles in both configurations. Under -DSOMRM_CHECKED=OFF the
// probes are inline no-ops, so the firing tests GTEST_SKIP; the
// valid-model and determinism tests run everywhere.

#include "core/invariants.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "core/randomization.hpp"
#include "core/scaling.hpp"
#include "density/pde_solver.hpp"
#include "linalg/csr.hpp"
#include "linalg/panel.hpp"

namespace somrm {
namespace {

using core::DriftScalePolicy;
using core::ScaledModel;
using core::SecondOrderMrm;
using linalg::Triplet;
using linalg::Vec;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

SecondOrderMrm two_state_model(Vec drifts, Vec variances) {
  auto gen = ctmc::Generator::from_rates(
      2, std::vector<Triplet>{{0, 1, 2.0}, {1, 0, 4.0}});
  return SecondOrderMrm(std::move(gen), std::move(drifts),
                        std::move(variances), Vec{1.0, 0.0});
}

/// Runs @p fn and asserts it throws InvariantViolation whose message
/// contains every needle (check name + diagnostic fragments).
template <typename Fn>
void expect_violation(Fn&& fn, std::vector<std::string> needles) {
  try {
    fn();
  } catch (const check::InvariantViolation& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("SOMRM_CHECKED violation"), std::string::npos)
        << what;
    for (const std::string& needle : needles)
      EXPECT_NE(what.find(needle), std::string::npos)
          << "missing \"" << needle << "\" in: " << what;
    return;
  }
  FAIL() << "expected check::InvariantViolation";
}

#define SKIP_UNLESS_CHECKED()                                          \
  do {                                                                 \
    if (!check::kChecked)                                              \
      GTEST_SKIP() << "probes are no-ops without -DSOMRM_CHECKED=ON";  \
  } while (0)

TEST(InvariantsTest, CheckedFlagMatchesMacro) {
  EXPECT_EQ(check::kChecked, SOMRM_CHECKED != 0);
}

TEST(InvariantsTest, NegativeScaledVarianceFires) {
  SKIP_UNLESS_CHECKED();
  ScaledModel scaled =
      core::scale_model(two_state_model({1.0, 2.0}, {0.5, 0.25}));
  scaled.s_prime[1] = -0.5;  // broken model: sigma^2 < 0 after scaling
  expect_violation(
      [&] { check::check_scaled_model(scaled, true, "test"); },
      {"lemma2.s_prime", "state 1", "sigma^2 must be >= 0"});
}

TEST(InvariantsTest, NonConservativeQPrimeRowFires) {
  SKIP_UNLESS_CHECKED();
  ScaledModel scaled =
      core::scale_model(two_state_model({1.0, 2.0}, {0.5, 0.25}));
  // Broken model: row 0 of the uniformized DTMC sums to 0.9, not 1.
  const std::vector<Triplet> leaky{
      {0, 0, 0.4}, {0, 1, 0.5}, {1, 0, 1.0}};
  scaled.q_prime = linalg::CsrMatrix::from_triplets(2, 2, leaky);
  expect_violation(
      [&] { check::check_scaled_model(scaled, true, "test"); },
      {"lemma2.q_prime", "row 0", "stochastic"});
}

TEST(InvariantsTest, RewardExceedingQdFires) {
  SKIP_UNLESS_CHECKED();
  ScaledModel scaled =
      core::scale_model(two_state_model({1.0, 2.0}, {0.5, 0.25}));
  scaled.r_prime[0] = 1.5;  // reward rate above q d: Lemma 2 broken
  expect_violation(
      [&] { check::check_scaled_model(scaled, true, "test"); },
      {"lemma2.r_prime", "state 0", "exceeds the Lemma-2 bound"});
  // The same model passes when the bounds are not enforced (kPaper mode).
  EXPECT_NO_THROW(check::check_scaled_model(scaled, false, "test"));
}

TEST(InvariantsTest, CsrConstructorPoisonSweepFires) {
  SKIP_UNLESS_CHECKED();
  expect_violation(
      [] {
        linalg::CsrMatrix bad(2, 2, {0, 1, 2}, {0, 1}, {1.0, kNan});
      },
      {"finite", "CsrMatrix values", "not finite"});
}

TEST(InvariantsTest, SweepColumnProbesFire) {
  SKIP_UNLESS_CHECKED();
  const Vec poisoned{1.0, kNan};
  expect_violation(
      [&] {
        check::check_sweep_column(poisoned, 3, 1, true, true, "test");
      },
      {"sweep.finite", "U^(1)(3)", "state 1"});

  const Vec negative{-0.25, 0.5};
  expect_violation(
      [&] {
        check::check_sweep_column(negative, 2, 1, true, true, "test");
      },
      {"sweep.nonnegative", "U^(1)(2)", "state 0", "subtraction-free"});
  // Centered scaling has mixed signs: the sign probe must be off.
  EXPECT_NO_THROW(
      check::check_sweep_column(negative, 2, 1, false, true, "test"));

  // Lemma-2 majorant for U^(1)(1) is 2 * 1!/0! = 2; 3.0 breaks it.
  const Vec too_big{3.0};
  expect_violation(
      [&] { check::check_sweep_column(too_big, 1, 1, true, true, "test"); },
      {"sweep.lemma2_bound", "U^(1)(1)", "majorant"});
  // k < j: the iterate is nonzero but the factorial bound does not apply.
  EXPECT_NO_THROW(
      check::check_sweep_column(too_big, 0, 1, true, true, "test"));
  // Impulse recursion obeys a different bound: majorant off, value passes.
  EXPECT_NO_THROW(
      check::check_sweep_column(too_big, 1, 1, true, false, "test"));
}

TEST(InvariantsTest, PanelOnesColumnProbeFires) {
  SKIP_UNLESS_CHECKED();
  linalg::Panel u(2, 3, 0.0);
  u.fill_col(0, 1.0);
  EXPECT_NO_THROW(check::check_sweep_panel(u, 4, 1, true, true, "test"));
  u(1, 0) = 0.5;  // U^(0) must stay the all-ones vector h
  expect_violation(
      [&] { check::check_sweep_panel(u, 4, 1, true, true, "test"); },
      {"sweep.ones_column", "state 1", "step 4"});
}

TEST(InvariantsTest, PanelAccessIsBoundsChecked) {
  SKIP_UNLESS_CHECKED();
  linalg::Panel u(2, 3, 0.0);
  expect_violation([&] { (void)u.row_data(5); },
                   {"panel.bounds", "row 5", "rows = 2"});
  expect_violation([&] { (void)u(0, 7); }, {"panel.bounds", "out of range"});
}

TEST(InvariantsTest, TruncationBoundProbesFire) {
  SKIP_UNLESS_CHECKED();
  // Bound above the requested epsilon at the chosen G.
  expect_violation(
      [] { check::check_truncation_bound(5e-9, 6e-9, 1e-9, 10, "test"); },
      {"theorem4.bound", "epsilon"});
  // Bound that grew when G increased: Theorem-4 monotonicity broken.
  expect_violation(
      [] { check::check_truncation_bound(2e-10, 1e-10, 1e-9, 10, "test"); },
      {"theorem4.monotone", "bound(10)", "bound(9)"});
  EXPECT_NO_THROW(
      check::check_truncation_bound(5e-10, 7e-10, 1e-9, 10, "test"));
}

TEST(InvariantsTest, JensenViolationFires) {
  SKIP_UNLESS_CHECKED();
  const Vec v1{1.0, 2.0};
  const Vec v2{1.5, 1.0};  // state 1: V2 = 1 < (V1)^2 = 4
  expect_violation(
      [&] { check::check_moment_consistency(v1, v2, 1e-12, "test"); },
      {"moments.jensen", "state 1", "deficit"});
  const Vec ok2{1.5, 4.5};
  EXPECT_NO_THROW(check::check_moment_consistency(v1, ok2, 1e-12, "test"));
}

// ---- Probes wired into the real solvers -----------------------------------

TEST(InvariantsTest, ValidModelPassesEndToEnd) {
  // All wired probes must stay silent on a healthy model, in every config.
  const auto model = two_state_model({1.0, 2.0}, {0.5, 0.25});
  const core::RandomizationMomentSolver solver(model);
  core::MomentSolverOptions options;
  options.max_moment = 3;
  const std::vector<double> times{0.5, 1.0, 2.0};
  EXPECT_NO_THROW((void)solver.solve_multi(times, options));
  const Vec w{1.0, 0.0};
  EXPECT_NO_THROW((void)solver.solve_terminal_weighted(1.0, w, options));

  density::PdeSolverOptions pde;
  pde.grid = {-6.0, 8.0, 128};
  pde.num_time_steps = 50;
  EXPECT_NO_THROW((void)density::density_via_pde(model, 1.0, pde));
}

TEST(InvariantsTest, ValidModelPassesWithPaperPolicyAndCentering) {
  // kPaper may break the reward bounds and centering breaks sign
  // constraints — both legitimate; the gated probes must not fire.
  const auto model = two_state_model({1.0, 2.0}, {30.0, 50.0});
  const core::RandomizationMomentSolver solver(model);
  core::MomentSolverOptions options;
  options.max_moment = 2;
  options.scale_policy = DriftScalePolicy::kPaper;
  EXPECT_NO_THROW((void)solver.solve(1.0, options));
  options.scale_policy = DriftScalePolicy::kSafe;
  options.center = 1.4;
  EXPECT_NO_THROW((void)solver.solve(1.0, options));
}

TEST(InvariantsTest, CheckedProbesNeverPerturbSolverOutput) {
  // Central contract: the probes only read. Within a checked build,
  // solving with checks enabled and disabled must be bit-identical (under
  // OFF both runs are unchecked and the test pins plain determinism).
  const auto model = two_state_model({1.0, 2.0}, {0.5, 0.25});
  const core::RandomizationMomentSolver solver(model);
  core::MomentSolverOptions options;
  options.max_moment = 3;

  check::set_enabled(true);
  const auto on = solver.solve(1.5, options);
  check::set_enabled(false);
  const auto off = solver.solve(1.5, options);
  check::set_enabled(true);

  ASSERT_EQ(on.per_state.size(), off.per_state.size());
  for (std::size_t j = 0; j < on.per_state.size(); ++j) {
    ASSERT_EQ(on.per_state[j].size(), off.per_state[j].size());
    EXPECT_EQ(0, std::memcmp(on.per_state[j].data(), off.per_state[j].data(),
                             on.per_state[j].size() * sizeof(double)))
        << "moment order " << j << " differs between checked and unchecked";
  }
  ASSERT_EQ(on.weighted.size(), off.weighted.size());
  EXPECT_EQ(0, std::memcmp(on.weighted.data(), off.weighted.data(),
                           on.weighted.size() * sizeof(double)));
}

}  // namespace
}  // namespace somrm
