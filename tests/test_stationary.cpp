// Tests for the GTH and power-iteration stationary solvers.

#include "ctmc/stationary.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ctmc/transient.hpp"

namespace somrm::ctmc {
namespace {

using linalg::Triplet;
using linalg::Vec;

Generator birth_death(std::size_t n, double birth, double death) {
  std::vector<Triplet> rates;
  for (std::size_t i = 0; i + 1 < n; ++i) rates.push_back({i, i + 1, birth});
  for (std::size_t i = 1; i < n; ++i) rates.push_back({i, i - 1, death});
  return Generator::from_rates(n, rates);
}

TEST(StationaryGthTest, TwoStateClosedForm) {
  const double a = 2.0, b = 3.0;
  const Generator g = Generator::from_rates(
      2, std::vector<Triplet>{{0, 1, a}, {1, 0, b}});
  const Vec pi = stationary_distribution_gth(g);
  EXPECT_NEAR(pi[0], b / (a + b), 1e-14);
  EXPECT_NEAR(pi[1], a / (a + b), 1e-14);
}

TEST(StationaryGthTest, BirthDeathGeometricForm) {
  // pi_i proportional to (birth/death)^i for constant-rate birth-death.
  const std::size_t n = 6;
  const double rho = 2.0 / 5.0;
  const Generator g = birth_death(n, 2.0, 5.0);
  const Vec pi = stationary_distribution_gth(g);
  for (std::size_t i = 1; i < n; ++i)
    EXPECT_NEAR(pi[i] / pi[i - 1], rho, 1e-12);
  double total = 0.0;
  for (double p : pi) total += p;
  EXPECT_NEAR(total, 1.0, 1e-14);
}

TEST(StationaryGthTest, SatisfiesBalanceEquations) {
  const std::vector<Triplet> rates{{0, 1, 1.0}, {0, 2, 2.0}, {1, 2, 0.5},
                                   {2, 0, 1.5}, {1, 0, 0.3}};
  const Generator g = Generator::from_rates(3, rates);
  const Vec pi = stationary_distribution_gth(g);
  // pi Q = 0.
  Vec piq(3, 0.0);
  g.matrix().multiply_transposed(pi, piq);
  for (double v : piq) EXPECT_NEAR(v, 0.0, 1e-13);
}

TEST(StationaryGthTest, SingleStateIsTrivial) {
  const Generator g = Generator::from_rates(1, std::vector<Triplet>{});
  EXPECT_EQ(stationary_distribution_gth(g), Vec{1.0});
}

TEST(StationaryGthTest, DetectsReducibleChain) {
  // State 1 unreachable backwards: 0 -> 1 only.
  const Generator g =
      Generator::from_rates(2, std::vector<Triplet>{{0, 1, 1.0}});
  EXPECT_THROW(stationary_distribution_gth(g), std::runtime_error);
}

TEST(StationaryPowerTest, AgreesWithGth) {
  const Generator g = birth_death(12, 1.7, 2.9);
  const Vec gth = stationary_distribution_gth(g);
  const Vec pow = stationary_distribution_power(g);
  for (std::size_t i = 0; i < gth.size(); ++i)
    EXPECT_NEAR(pow[i], gth[i], 1e-9);
}

TEST(StationaryPowerTest, PeriodicEmbeddedChainStillConverges) {
  // A 2-cycle with equal rates is periodic as a plain embedded DTMC; the
  // inflated uniformization rate keeps self-loops, so the iteration must
  // converge anyway.
  const Generator g = Generator::from_rates(
      2, std::vector<Triplet>{{0, 1, 1.0}, {1, 0, 1.0}});
  const Vec pi = stationary_distribution_power(g);
  EXPECT_NEAR(pi[0], 0.5, 1e-9);
  EXPECT_NEAR(pi[1], 0.5, 1e-9);
}

TEST(StationaryPowerTest, MatchesLongHorizonTransient) {
  const Generator g = birth_death(8, 2.0, 3.0);
  const Vec pi = stationary_distribution_power(g);
  const Vec p_long = transient_distribution(
      g, linalg::unit_vec(8, 0), 200.0);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(pi[i], p_long[i], 1e-8);
}

TEST(StationaryPowerTest, AllAbsorbingReturnsUniform) {
  const Generator g = Generator::from_rates(4, std::vector<Triplet>{});
  const Vec pi = stationary_distribution_power(g);
  for (double p : pi) EXPECT_DOUBLE_EQ(p, 0.25);
}

}  // namespace
}  // namespace somrm::ctmc
