// Tests for the piecewise-constant (inhomogeneous) MRM solver. The key
// anchor: splitting a homogeneous model into segments must reproduce the
// homogeneous solution exactly, for any split.

#include "core/piecewise.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/moment_utils.hpp"
#include "ctmc/transient.hpp"

namespace somrm::core {
namespace {

using linalg::Triplet;
using linalg::Vec;

SecondOrderMrm base_model(double drift_scale) {
  auto gen = ctmc::Generator::from_rates(
      3, std::vector<Triplet>{{0, 1, 2.0}, {1, 2, 1.0}, {2, 0, 3.0},
                              {1, 0, 0.5}});
  return SecondOrderMrm(std::move(gen),
                        Vec{5.0 * drift_scale, -1.0 * drift_scale, 2.0},
                        Vec{0.1, 0.4, 0.2}, Vec{1.0, 0.0, 0.0});
}

TEST(PiecewiseTest, SinglePhaseMatchesHomogeneousSolver) {
  const auto model = base_model(1.0);
  MomentSolverOptions opts;
  opts.epsilon = 1e-12;
  const auto direct = RandomizationMomentSolver(model).solve(0.9, opts);
  const PiecewiseMomentSolver pw({Phase{model, 0.9}});
  const auto piece = pw.solve_final(opts);
  for (std::size_t j = 0; j <= 3; ++j) {
    EXPECT_NEAR(piece.weighted[j], direct.weighted[j],
                1e-9 * (1.0 + std::abs(direct.weighted[j])));
    for (std::size_t i = 0; i < 3; ++i)
      EXPECT_NEAR(piece.per_state[j][i], direct.per_state[j][i],
                  1e-9 * (1.0 + std::abs(direct.per_state[j][i])));
  }
}

TEST(PiecewiseTest, SplittingHomogeneousModelIsExact) {
  // Same model in 3 unequal segments == one homogeneous solve.
  const auto model = base_model(1.0);
  MomentSolverOptions opts;
  opts.max_moment = 4;
  opts.epsilon = 1e-12;
  const double t = 1.4;
  const auto direct = RandomizationMomentSolver(model).solve(t, opts);

  const PiecewiseMomentSolver pw(
      {Phase{model, 0.3}, Phase{model, 0.9}, Phase{model, 0.2}});
  const auto piece = pw.solve_final(opts);
  for (std::size_t j = 0; j <= 4; ++j)
    EXPECT_NEAR(piece.weighted[j], direct.weighted[j],
                1e-8 * (1.0 + std::abs(direct.weighted[j])))
        << "moment " << j;
}

TEST(PiecewiseTest, IntermediateEpochsReported) {
  const auto model = base_model(1.0);
  MomentSolverOptions opts;
  opts.epsilon = 1e-12;
  const PiecewiseMomentSolver pw({Phase{model, 0.4}, Phase{model, 0.6}});
  const auto results = pw.solve(opts);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_DOUBLE_EQ(results[0].time, 0.4);
  EXPECT_DOUBLE_EQ(results[1].time, 1.0);
  const auto at_04 = RandomizationMomentSolver(model).solve(0.4, opts);
  EXPECT_NEAR(results[0].weighted[2], at_04.weighted[2],
              1e-8 * (1.0 + std::abs(at_04.weighted[2])));
}

TEST(PiecewiseTest, ZeroRewardPhaseOnlyMovesTheChain) {
  // Phase 2 has zero rewards: total reward moments = phase-1 moments, but
  // the state distribution keeps evolving (checked via order 0 weights).
  const auto earning = base_model(1.0);
  auto idle_gen = ctmc::Generator::from_rates(
      3, std::vector<Triplet>{{0, 1, 2.0}, {1, 2, 1.0}, {2, 0, 3.0},
                              {1, 0, 0.5}});
  const SecondOrderMrm idle(std::move(idle_gen), Vec{0.0, 0.0, 0.0},
                            Vec{0.0, 0.0, 0.0}, Vec{1.0, 0.0, 0.0});
  MomentSolverOptions opts;
  opts.epsilon = 1e-12;

  const PiecewiseMomentSolver pw({Phase{earning, 0.5}, Phase{idle, 0.7}});
  const auto results = pw.solve(opts);
  const auto phase1 = RandomizationMomentSolver(earning).solve(0.5, opts);
  for (std::size_t j = 1; j <= 3; ++j)
    EXPECT_NEAR(results[1].weighted[j], phase1.weighted[j],
                1e-8 * (1.0 + std::abs(phase1.weighted[j])));
}

TEST(PiecewiseTest, DayNightMeanDecomposes) {
  // E[B_total] = E[B_day] + E_{p(t_day)}[B_night]: check against a manual
  // two-stage computation through the transient distribution.
  const auto day = base_model(1.0);
  const auto night = base_model(0.2);
  const double t_day = 0.8, t_night = 1.1;
  MomentSolverOptions opts;
  opts.max_moment = 1;
  opts.epsilon = 1e-12;

  const PiecewiseMomentSolver pw({Phase{day, t_day}, Phase{night, t_night}});
  const double total = pw.solve_final(opts).weighted[1];

  const double day_mean =
      RandomizationMomentSolver(day).solve(t_day, opts).weighted[1];
  const Vec p_switch = ctmc::transient_distribution(
      day.generator(), day.initial(), t_day);
  const auto night_from_switch = night.with_initial(p_switch);
  const double night_mean = RandomizationMomentSolver(night_from_switch)
                                .solve(t_night, opts)
                                .weighted[1];
  EXPECT_NEAR(total, day_mean + night_mean,
              1e-8 * (1.0 + std::abs(total)));
}

TEST(PiecewiseTest, VarianceGrowsAcrossPhases) {
  const auto model = base_model(1.0);
  MomentSolverOptions opts;
  opts.epsilon = 1e-11;
  const PiecewiseMomentSolver pw(
      {Phase{model, 0.5}, Phase{model, 0.5}, Phase{model, 0.5}});
  const auto results = pw.solve(opts);
  double prev = 0.0;
  for (const auto& r : results) {
    const double var = variance_from_raw(r.weighted);
    EXPECT_GT(var, prev);
    prev = var;
  }
}

TEST(PiecewiseTest, InputValidation) {
  EXPECT_THROW(PiecewiseMomentSolver({}), std::invalid_argument);
  const auto m3 = base_model(1.0);
  EXPECT_THROW(PiecewiseMomentSolver({Phase{m3, 0.0}}),
               std::invalid_argument);
  auto gen2 = ctmc::Generator::from_rates(
      2, std::vector<Triplet>{{0, 1, 1.0}, {1, 0, 1.0}});
  const SecondOrderMrm m2(std::move(gen2), Vec{1.0, 2.0}, Vec{0.0, 0.0},
                          Vec{1.0, 0.0});
  EXPECT_THROW(PiecewiseMomentSolver({Phase{m3, 1.0}, Phase{m2, 1.0}}),
               std::invalid_argument);
  const PiecewiseMomentSolver pw({Phase{m3, 1.0}});
  MomentSolverOptions bad;
  bad.center = 1.0;
  EXPECT_THROW(pw.solve(bad), std::invalid_argument);
}

}  // namespace
}  // namespace somrm::core
