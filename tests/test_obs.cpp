// Tests for the solver telemetry subsystem (src/obs/): counter/timer
// accumulation and deterministic cross-thread merging, SolverStats
// population by the randomization/impulse solvers, bit-identity of solver
// output with tracing on vs off, and well-formedness of the Chrome
// trace_event JSON (parsed back by a minimal JSON parser below).
//
// Every suite is named Obs* so CI can run exactly these with
// `ctest -R '^Obs'` under SOMRM_TRACE. The assertions branch on
// obs::kEnabled where behavior legitimately differs between the ON and OFF
// builds, so this file passes in both.

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/impulse_randomization.hpp"
#include "core/randomization.hpp"
#include "linalg/parallel.hpp"
#include "obs/export.hpp"
#include "obs/histogram.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace somrm {
namespace {

using linalg::Triplet;
using linalg::Vec;

core::SecondOrderMrm ring_model(std::size_t n) {
  std::vector<Triplet> rates;
  for (std::size_t i = 0; i < n; ++i)
    rates.push_back(
        {i, (i + 1) % n, 1.0 + 0.25 * static_cast<double>(i % 7)});
  return core::SecondOrderMrm(
      ctmc::Generator::from_rates(n, rates),
      Vec(n, 1.5), Vec(n, 0.5), linalg::unit_vec(n, 0));
}

std::int64_t metric_count(const char* name) {
  return obs::metric(name).count();
}

// ---------------------------------------------------------------------------
// Metric counters and timers
// ---------------------------------------------------------------------------

TEST(ObsMetricTest, CounterAccumulates) {
  obs::Metric& m = obs::metric("test.counter_accumulates");
  const std::int64_t c0 = m.count();
  const std::int64_t ns0 = m.total_ns();
  m.add(3, 100);
  m.add(2, 50);
  if (obs::kEnabled) {
    EXPECT_EQ(m.count() - c0, 5);
    EXPECT_EQ(m.total_ns() - ns0, 150);
  } else {
    EXPECT_EQ(m.count(), 0);
    EXPECT_EQ(m.total_ns(), 0);
  }
}

TEST(ObsMetricTest, SameNameYieldsSameMetric) {
  obs::Metric& a = obs::metric("test.same_name");
  obs::Metric& b = obs::metric("test.same_name");
  const std::int64_t c0 = a.count();
  b.add(1);
  if (obs::kEnabled) {
    EXPECT_EQ(a.count() - c0, 1);
  }
}

TEST(ObsMetricTest, ScopedTimerAddsOneCount) {
  obs::Metric& m = obs::metric("test.scoped_timer");
  const std::int64_t c0 = m.count();
  { obs::ScopedTimer timer(m); }
  if (obs::kEnabled) {
    EXPECT_EQ(m.count() - c0, 1);
    EXPECT_GE(m.total_ns(), 0);
  }
}

TEST(ObsMetricTest, SnapshotSortedByName) {
  obs::metric("test.zz_snap");
  obs::metric("test.aa_snap");
  const auto samples = obs::snapshot();
  if (!obs::kEnabled) {
    EXPECT_TRUE(samples.empty());
    return;
  }
  EXPECT_GE(samples.size(), 2u);
  for (std::size_t i = 1; i < samples.size(); ++i)
    EXPECT_LT(samples[i - 1].name, samples[i].name);
}

// The merged total must be exact — an integer sum over per-thread cells —
// and identical for every thread count: each of the `total` iterations
// adds exactly once, regardless of how parallel_for partitions the range
// or which pool thread runs which range.
TEST(ObsMetricTest, MergeDeterministicAcrossThreadCounts) {
  constexpr std::size_t kTotal = 10000;
  obs::Metric& m = obs::metric("test.merge_determinism");
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    linalg::set_num_threads(threads);
    const std::int64_t before = m.count();
    linalg::parallel_for(
        kTotal,
        [&m](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) m.add(1);
        },
        /*grain=*/64);
    if (obs::kEnabled)
      EXPECT_EQ(m.count() - before, static_cast<std::int64_t>(kTotal))
          << "threads = " << threads;
    else
      EXPECT_EQ(m.count(), 0);
  }
  linalg::set_num_threads(0);
}

// Counts survive pool teardown: set_num_threads() retires the worker
// threads, whose cells must fold into the retired totals, not vanish.
TEST(ObsMetricTest, CountsSurvivePoolTeardown) {
  obs::Metric& m = obs::metric("test.retire_survival");
  linalg::set_num_threads(4);
  const std::int64_t before = m.count();
  linalg::parallel_for(
      1000, [&m](std::size_t b, std::size_t e) { m.add(static_cast<std::int64_t>(e - b)); },
      /*grain=*/8);
  linalg::set_num_threads(2);  // kills the 3-worker pool
  linalg::parallel_for(
      1000, [&m](std::size_t b, std::size_t e) { m.add(static_cast<std::int64_t>(e - b)); },
      /*grain=*/8);
  linalg::set_num_threads(0);
  if (obs::kEnabled) {
    EXPECT_EQ(m.count() - before, 2000);
  }
}

TEST(ObsMetricTest, NowNsMonotoneWhenEnabled) {
  const std::int64_t a = obs::now_ns();
  const std::int64_t b = obs::now_ns();
  if (obs::kEnabled) {
    EXPECT_GE(a, 0);
    EXPECT_GE(b, a);
  } else {
    EXPECT_EQ(a, 0);
    EXPECT_EQ(b, 0);
  }
}

// ---------------------------------------------------------------------------
// SolverStats population
// ---------------------------------------------------------------------------

TEST(ObsSolverStatsTest, SolveMultiFillsStructuralFields) {
  const core::RandomizationMomentSolver solver(ring_model(64));
  core::MomentSolverOptions opts;
  opts.max_moment = 3;
  const std::vector<double> times{0.5, 1.0};
  const auto results = solver.solve_multi(times, opts);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    const obs::SolverStats& s = r.stats;
    EXPECT_EQ(s.kernel, "panel");
    EXPECT_EQ(s.panel_width, 4u);
    EXPECT_GT(s.threads, 0u);
    ASSERT_EQ(s.truncation_points.size(), 4u);
    ASSERT_EQ(s.window_widths.size(), times.size());
    for (std::size_t w : s.window_widths) EXPECT_GT(w, 0u);
    EXPECT_GT(s.sweep_steps, 0u);
    EXPECT_GT(s.sweep_flops, 0u);
    EXPECT_GT(s.active_weight_sum, 0u);
    // G_max of the sweep is the max of the per-moment G's.
    std::size_t g_max = 0;
    for (std::size_t g : s.truncation_points) g_max = std::max(g_max, g);
    EXPECT_EQ(s.sweep_steps, g_max);
    if (obs::kEnabled) {
      EXPECT_GT(s.total_seconds, 0.0);
      EXPECT_GT(s.sweep_seconds, 0.0);
      EXPECT_GT(s.effective_gflops, 0.0);
      EXPECT_GE(s.load_imbalance, 0.0);
      EXPECT_LE(s.load_imbalance, 1.0);
    } else {
      EXPECT_EQ(s.total_seconds, 0.0);
      EXPECT_EQ(s.sweep_seconds, 0.0);
      EXPECT_EQ(s.effective_gflops, 0.0);
    }
  }
}

TEST(ObsSolverStatsTest, LegacyKernelIsNamed) {
  const core::RandomizationMomentSolver solver(ring_model(16));
  core::MomentSolverOptions opts;
  opts.kernel = core::SweepKernel::kFusedVectors;
  EXPECT_EQ(solver.solve(0.5, opts).stats.kernel, "fused_vectors");
}

TEST(ObsSolverStatsTest, TerminalWeightedFillsStats) {
  const core::RandomizationMomentSolver solver(ring_model(16));
  const auto res = solver.solve_terminal_weighted(0.5, linalg::ones(16));
  EXPECT_EQ(res.stats.kernel, "panel");
  EXPECT_GT(res.stats.sweep_steps, 0u);
  ASSERT_EQ(res.stats.window_widths.size(), 1u);
}

TEST(ObsSolverStatsTest, ImpulseSolverFillsStats) {
  const core::SecondOrderMrm base = ring_model(16);
  const auto uniform = linalg::CsrMatrix::from_triplets(16, 16, {});
  const core::SecondOrderImpulseMrm model(base, uniform, uniform);
  const core::ImpulseMomentSolver solver(model);
  const auto res = solver.solve(0.5);
  EXPECT_EQ(res.stats.kernel, "impulse_panel");
  EXPECT_GT(res.stats.sweep_steps, 0u);
  EXPECT_GT(res.stats.sweep_flops, 0u);
}

TEST(ObsSolverStatsTest, SweepStepMetricAdvances) {
  const core::RandomizationMomentSolver solver(ring_model(32));
  const std::int64_t before = metric_count("sweep.step");
  const auto res = solver.solve(0.5);
  if (obs::kEnabled)
    EXPECT_EQ(metric_count("sweep.step") - before,
              static_cast<std::int64_t>(res.stats.sweep_steps));
  else
    EXPECT_EQ(metric_count("sweep.step"), 0);
}

TEST(ObsReportTest, SolverReportMentionsKeyQuantities) {
  const core::RandomizationMomentSolver solver(ring_model(16));
  const auto res = solver.solve(0.5);
  const std::string text = obs::report(res.stats);
  EXPECT_NE(text.find("panel"), std::string::npos);
  EXPECT_NE(text.find("G("), std::string::npos);
  EXPECT_NE(text.find("sweep"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Minimal JSON parser (validation only) for the trace-output tests
// ---------------------------------------------------------------------------

class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  bool parse() {
    pos_ = 0;
    const bool ok = value();
    skip_ws();
    return ok && pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }
  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool string_value() {
    if (!consume('"')) return false;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      ++pos_;
    }
    return pos_ < text_.size() && text_[pos_++] == '"';
  }
  bool number_value() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    return pos_ > start;
  }
  bool value() {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return object_value();
    if (c == '[') return array_value();
    if (c == '"') return string_value();
    if (text_.compare(pos_, 4, "true") == 0) return pos_ += 4, true;
    if (text_.compare(pos_, 5, "false") == 0) return pos_ += 5, true;
    if (text_.compare(pos_, 4, "null") == 0) return pos_ += 4, true;
    return number_value();
  }
  bool object_value() {
    if (!consume('{')) return false;
    if (consume('}')) return true;
    do {
      skip_ws();
      if (!string_value()) return false;
      if (!consume(':')) return false;
      if (!value()) return false;
    } while (consume(','));
    return consume('}');
  }
  bool array_value() {
    if (!consume('[')) return false;
    if (consume(']')) return true;
    do {
      if (!value()) return false;
    } while (consume(','));
    return consume(']');
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

TEST(ObsJsonValidatorTest, AcceptsAndRejectsCorrectly) {
  EXPECT_TRUE(JsonValidator(R"({"a": [1, -2.5e3, "x\"y"], "b": {}})").parse());
  EXPECT_TRUE(JsonValidator("[]").parse());
  EXPECT_FALSE(JsonValidator(R"({"a": )").parse());
  EXPECT_FALSE(JsonValidator(R"([1, 2},)").parse());
  EXPECT_FALSE(JsonValidator("").parse());
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (!f) return {};
  std::string content;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
    content.append(buf, got);
  std::fclose(f);
  return content;
}

std::string temp_trace_path(const char* tag) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "somrm_trace_" + info->test_suite_name() +
         "_" + info->name() + "_" + tag + ".json";
}

// ---------------------------------------------------------------------------
// Trace output
// ---------------------------------------------------------------------------

TEST(ObsTraceTest, WritesWellFormedJsonWithSweepEvents) {
  if (!obs::kEnabled) {
    // OFF build: the whole trace API is a no-op; nothing must be written.
    obs::set_trace_path("/nonexistent-dir/never-written.json");
    obs::write_trace();
    EXPECT_FALSE(obs::trace_enabled());
    return;
  }
  const std::string path = temp_trace_path("solve");
  obs::set_trace_path(path);
  ASSERT_TRUE(obs::trace_enabled());

  const core::RandomizationMomentSolver solver(ring_model(64));
  const auto res = solver.solve(0.5);
  obs::write_trace();
  obs::set_trace_path("");

  const std::string content = read_file(path);
  ASSERT_FALSE(content.empty()) << "trace file not written: " << path;
  EXPECT_TRUE(JsonValidator(content).parse())
      << "trace is not valid JSON:\n"
      << content.substr(0, 400);
  EXPECT_NE(content.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(content.find("\"sweep.step\""), std::string::npos);
  EXPECT_NE(content.find("\"solve_multi\""), std::string::npos);
  EXPECT_NE(content.find("\"poisson.window_width\""), std::string::npos);
  // One complete event per sweep step.
  std::size_t sweep_events = 0;
  for (std::size_t at = content.find("\"sweep.step\"");
       at != std::string::npos;
       at = content.find("\"sweep.step\"", at + 1))
    ++sweep_events;
  EXPECT_EQ(sweep_events, res.stats.sweep_steps);
  std::remove(path.c_str());
}

TEST(ObsTraceTest, SolverOutputBitIdenticalWithTraceOnAndOff) {
  const core::RandomizationMomentSolver solver(ring_model(48));
  core::MomentSolverOptions opts;
  opts.max_moment = 4;
  opts.epsilon = 1e-12;

  obs::set_trace_path("");
  const auto plain = solver.solve(0.75, opts);

  const std::string path = temp_trace_path("bitident");
  obs::set_trace_path(path);
  const auto traced = solver.solve(0.75, opts);
  obs::set_trace_path("");
  std::remove(path.c_str());

  ASSERT_EQ(plain.weighted.size(), traced.weighted.size());
  for (std::size_t j = 0; j < plain.weighted.size(); ++j)
    EXPECT_EQ(plain.weighted[j], traced.weighted[j]) << "moment " << j;
  ASSERT_EQ(plain.per_state.size(), traced.per_state.size());
  for (std::size_t j = 0; j < plain.per_state.size(); ++j)
    EXPECT_EQ(plain.per_state[j], traced.per_state[j]) << "moment " << j;
}

TEST(ObsTraceTest, CounterAndInstantEventsAreWritten) {
  if (!obs::kEnabled) return;
  const std::string path = temp_trace_path("kinds");
  obs::set_trace_path(path);
  obs::trace_counter("test.counter", 42.0);
  obs::trace_instant("test.instant", "test", "arg", 1.0);
  {
    obs::TraceScope scope("test.scope", "test");
  }
  obs::write_trace();
  obs::set_trace_path("");

  const std::string content = read_file(path);
  ASSERT_FALSE(content.empty());
  EXPECT_TRUE(JsonValidator(content).parse());
  EXPECT_NE(content.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(content.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(content.find("\"ph\": \"X\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(ObsTraceTest, ConcurrentRecordingDuringFlushLosesNoEvents) {
  // Regression test: thread event buffers used to be drained by
  // write_trace() without synchronizing against the owning thread's
  // push_back — a documented "caller's race". Each buffer now has its own
  // mutex, so recording concurrent with a flush must neither tear the
  // vector nor drop events: every instant recorded while enabled appears
  // in the final trace exactly once.
  if (!obs::kEnabled) return;
  const std::string path = temp_trace_path("hammer");
  obs::set_trace_path(path);
  ASSERT_TRUE(obs::trace_enabled());

  constexpr int kThreads = 4;
  constexpr int kEventsPerThread = 2000;
  std::atomic<bool> start{false};
  std::atomic<bool> done{false};
  std::vector<std::thread> recorders;
  recorders.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    recorders.emplace_back([&] {
      while (!start.load(std::memory_order_relaxed)) {
      }
      for (int i = 0; i < kEventsPerThread; ++i)
        obs::trace_instant("test.hammer", "test", "i",
                           static_cast<double>(i));
    });
  std::thread flusher([&] {
    while (!done.load(std::memory_order_relaxed)) obs::write_trace();
  });
  start.store(true, std::memory_order_relaxed);
  for (std::thread& t : recorders) t.join();
  done.store(true, std::memory_order_relaxed);
  flusher.join();
  obs::write_trace();  // final rewrite carries the cumulative event list
  obs::set_trace_path("");

  const std::string content = read_file(path);
  ASSERT_FALSE(content.empty()) << "trace file not written: " << path;
  EXPECT_TRUE(JsonValidator(content).parse())
      << "trace is not valid JSON:\n"
      << content.substr(0, 400);
  std::size_t hammer_events = 0;
  for (std::size_t at = content.find("\"test.hammer\"");
       at != std::string::npos;
       at = content.find("\"test.hammer\"", at + 1))
    ++hammer_events;
  EXPECT_EQ(hammer_events,
            static_cast<std::size_t>(kThreads) * kEventsPerThread);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Gauges
// ---------------------------------------------------------------------------

TEST(ObsGaugeTest, SetAndReadLastWriterWins) {
  obs::Gauge& g = obs::gauge("test.gauge.set_read");
  g.set(7);
  g.set(42);
  if (obs::kEnabled) {
    EXPECT_EQ(g.value(), 42);
  } else {
    EXPECT_EQ(g.value(), 0);
  }
}

TEST(ObsGaugeTest, SameNameYieldsSameGauge) {
  obs::Gauge& a = obs::gauge("test.gauge.same_name");
  obs::Gauge& b = obs::gauge("test.gauge.same_name");
  a.set(11);
  if (obs::kEnabled) {
    EXPECT_EQ(b.value(), 11);
  }
}

TEST(ObsGaugeTest, SnapshotSortedByName) {
  obs::gauge("test.gauge.zz").set(1);
  obs::gauge("test.gauge.aa").set(2);
  const auto samples = obs::gauge_snapshot();
  if (!obs::kEnabled) {
    EXPECT_TRUE(samples.empty());
    return;
  }
  EXPECT_GE(samples.size(), 2u);
  for (std::size_t i = 1; i < samples.size(); ++i)
    EXPECT_LT(samples[i - 1].name, samples[i].name);
}

// ---------------------------------------------------------------------------
// Metrics export (Prometheus + JSON renderers, snapshot, file round-trip)
// ---------------------------------------------------------------------------

// A hand-built snapshot exercises the pure renderers identically in ON and
// OFF builds — they are functions of the snapshot value, not global state.
obs::MetricsSnapshot fixture_snapshot() {
  obs::MetricsSnapshot snap;
  snap.counters.push_back({"session.cache.hit", 7, 0});
  snap.counters.push_back({"sweep.step", 12, 3'000'000'000});
  snap.gauges.push_back({"mem.peak_rss_bytes", 4734976});
  obs::HistogramSample h;
  h.name = "session.query.latency_ns";
  h.buckets.assign(obs::kHistogramBuckets, 0);
  h.buckets[obs::histogram_bucket_index(1000)] = 3;
  h.buckets[obs::histogram_bucket_index(2000)] = 5;
  h.count = 8;
  h.sum = 3 * 1000 + 5 * 2000;
  snap.histograms.push_back(std::move(h));
  return snap;
}

TEST(ObsExportTest, PrometheusRenderHasAllFamilies) {
  const std::string text = obs::render_prometheus(fixture_snapshot());
  // Counters: _total always; _seconds_total only when time was recorded.
  EXPECT_NE(text.find("# TYPE somrm_session_cache_hit_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("somrm_session_cache_hit_total 7"), std::string::npos);
  EXPECT_EQ(text.find("somrm_session_cache_hit_seconds_total"),
            std::string::npos);
  EXPECT_NE(text.find("somrm_sweep_step_total 12"), std::string::npos);
  EXPECT_NE(text.find("somrm_sweep_step_seconds_total 3.000000000"),
            std::string::npos);
  // Gauge.
  EXPECT_NE(text.find("# TYPE somrm_mem_peak_rss_bytes gauge"),
            std::string::npos);
  EXPECT_NE(text.find("somrm_mem_peak_rss_bytes 4734976"), std::string::npos);
  // Histogram: cumulative buckets ending in +Inf, plus _sum and _count.
  EXPECT_NE(text.find("# TYPE somrm_session_query_latency_ns histogram"),
            std::string::npos);
  EXPECT_NE(text.find("somrm_session_query_latency_ns_bucket{le=\"+Inf\"} 8"),
            std::string::npos);
  EXPECT_NE(text.find("somrm_session_query_latency_ns_sum 13000"),
            std::string::npos);
  EXPECT_NE(text.find("somrm_session_query_latency_ns_count 8"),
            std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

TEST(ObsExportTest, PrometheusBucketBoundsAreInclusiveUppers) {
  const std::string text = obs::render_prometheus(fixture_snapshot());
  // le is upper-1: the exact inclusive bound of an integer-valued bucket.
  const std::size_t idx1000 = obs::histogram_bucket_index(1000);
  const std::string le1000 =
      "{le=\"" + std::to_string(obs::histogram_bucket_upper(idx1000) - 1) +
      "\"} 3";
  EXPECT_NE(text.find(le1000), std::string::npos) << text;
  const std::size_t idx2000 = obs::histogram_bucket_index(2000);
  const std::string le2000 =
      "{le=\"" + std::to_string(obs::histogram_bucket_upper(idx2000) - 1) +
      "\"} 8";  // cumulative: 3 + 5
  EXPECT_NE(text.find(le2000), std::string::npos) << text;
}

TEST(ObsExportTest, EmptySnapshotRendersEmpty) {
  EXPECT_TRUE(obs::render_prometheus(obs::MetricsSnapshot{}).empty());
  const std::string json = obs::render_json(obs::MetricsSnapshot{});
  EXPECT_TRUE(JsonValidator(json).parse()) << json;
}

TEST(ObsExportTest, JsonRenderIsValidAndCanonical) {
  const std::string json = obs::render_json(fixture_snapshot());
  EXPECT_TRUE(JsonValidator(json).parse()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"session.cache.hit\""), std::string::npos);
  EXPECT_NE(json.find("\"mem.peak_rss_bytes\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  // Only the two non-empty buckets appear.
  std::size_t bucket_objects = 0;
  for (std::size_t at = json.find("\"upper\""); at != std::string::npos;
       at = json.find("\"upper\"", at + 1))
    ++bucket_objects;
  EXPECT_EQ(bucket_objects, 2u);
}

TEST(ObsExportTest, PeakRssIsPositiveOnLinux) {
  // 0 is the documented fallback when /proc is unavailable; on this CI
  // platform the read must succeed and a live process has peaked above 0.
  EXPECT_GT(obs::peak_rss_bytes(), 0);
}

TEST(ObsExportTest, SnapshotCarriesPeakRssGauge) {
  if (!obs::kEnabled) {
    const obs::MetricsSnapshot snap = obs::metrics_snapshot();
    EXPECT_TRUE(snap.counters.empty());
    EXPECT_TRUE(snap.gauges.empty());
    EXPECT_TRUE(snap.histograms.empty());
    return;
  }
  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  bool found = false;
  for (const obs::GaugeSample& g : snap.gauges)
    if (g.name == "mem.peak_rss_bytes") {
      found = true;
      EXPECT_GT(g.value, 0);
    }
  EXPECT_TRUE(found) << "metrics_snapshot() must refresh mem.peak_rss_bytes";
}

TEST(ObsExportTest, WriteMetricsRoundTripsBothFormats) {
  if (!obs::kEnabled) {
    // OFF build: enabling must be a no-op and never create a file.
    obs::set_metrics_path("/nonexistent-dir/never-written.prom");
    obs::write_metrics();
    EXPECT_TRUE(obs::metrics_path().empty());
    return;
  }
  obs::metric("test.export.roundtrip").add(1, 500);
  obs::histogram("test.export.latency").record(1234);

  const std::string prom_path = ::testing::TempDir() + "somrm_export_rt.prom";
  obs::set_metrics_path(prom_path);
  EXPECT_EQ(obs::metrics_path(), prom_path);
  obs::write_metrics();
  const std::string prom = read_file(prom_path);
  ASSERT_FALSE(prom.empty()) << "metrics file not written: " << prom_path;
  EXPECT_NE(prom.find("somrm_test_export_roundtrip_total"),
            std::string::npos);
  EXPECT_NE(prom.find("somrm_test_export_latency_bucket"), std::string::npos);

  const std::string json_path = ::testing::TempDir() + "somrm_export_rt.json";
  obs::set_metrics_path(json_path);
  obs::write_metrics();
  obs::set_metrics_path("");
  const std::string json = read_file(json_path);
  ASSERT_FALSE(json.empty());
  EXPECT_TRUE(JsonValidator(json).parse()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"test.export.latency\""), std::string::npos);
  std::remove(prom_path.c_str());
  std::remove(json_path.c_str());
}

TEST(ObsExportTest, SolverOutputBitIdenticalWithMetricsOnAndOff) {
  const core::RandomizationMomentSolver solver(ring_model(48));
  core::MomentSolverOptions opts;
  opts.max_moment = 4;
  opts.epsilon = 1e-12;

  obs::set_metrics_path("");
  const auto plain = solver.solve(0.75, opts);

  const std::string path = ::testing::TempDir() + "somrm_bitident_m.prom";
  obs::set_metrics_path(path);
  const auto metered = solver.solve(0.75, opts);
  obs::write_metrics();
  obs::set_metrics_path("");
  std::remove(path.c_str());

  ASSERT_EQ(plain.weighted.size(), metered.weighted.size());
  for (std::size_t j = 0; j < plain.weighted.size(); ++j)
    EXPECT_EQ(plain.weighted[j], metered.weighted[j]) << "moment " << j;
  ASSERT_EQ(plain.per_state.size(), metered.per_state.size());
  for (std::size_t j = 0; j < plain.per_state.size(); ++j)
    EXPECT_EQ(plain.per_state[j], metered.per_state[j]) << "moment " << j;
}

TEST(ObsReportTest, CumulativeReportRendersGaugesAndHistograms) {
  obs::gauge("test.report.gauge").set(99);
  obs::histogram("test.report.hist").record(1000);
  const std::string text = obs::report();
  if (!obs::kEnabled) {
    EXPECT_NE(text.find("compiled out"), std::string::npos);
    return;
  }
  EXPECT_NE(text.find("gauge test.report.gauge: 99"), std::string::npos);
  EXPECT_NE(text.find("hist test.report.hist:"), std::string::npos);
  EXPECT_NE(text.find("p99"), std::string::npos);
}

}  // namespace
}  // namespace somrm
