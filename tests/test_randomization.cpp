// Tests for the randomization moment solver (Theorems 3-4) — the paper's
// core algorithm. Anchors:
//  * models whose reward is exactly Brownian (all states share r, sigma^2):
//    every moment has the N(rt, sigma^2 t) closed form regardless of the
//    chain, which exercises the full recursion including S';
//  * the degenerate no-transition chain (closed-form path);
//  * numerical integration of E[B(t)] = int_0^t p(u) . r du via the
//    transient solver;
//  * internal consistency properties (variance >= 0, mean independent of
//    sigma^2, multi-time vs single-time, epsilon honored, shift transform).

#include "core/randomization.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <tuple>
#include <vector>

#include "core/moment_utils.hpp"
#include "ctmc/transient.hpp"
#include "linalg/parallel.hpp"
#include "models/onoff.hpp"
#include "prob/normal.hpp"

namespace somrm::core {
namespace {

using linalg::Triplet;
using linalg::Vec;

ctmc::Generator ring_generator(std::size_t n, double rate) {
  std::vector<Triplet> rates;
  for (std::size_t i = 0; i < n; ++i)
    rates.push_back({i, (i + 1) % n, rate * (1.0 + 0.3 * static_cast<double>(i))});
  return ctmc::Generator::from_rates(n, rates);
}

SecondOrderMrm uniform_reward_model(std::size_t n, double r, double s2) {
  return SecondOrderMrm(ring_generator(n, 2.0), Vec(n, r), Vec(n, s2),
                        linalg::unit_vec(n, 0));
}

SecondOrderMrm varied_model(std::size_t n, double sigma2_scale);  // below

TEST(RandomizationTest, UniformRewardsMatchBrownianClosedForm) {
  // All states share (r, sigma^2): B(t) ~ N(r t, sigma^2 t) exactly.
  const double r = 1.7, s2 = 0.8, t = 0.9;
  const RandomizationMomentSolver solver(uniform_reward_model(4, r, s2));
  MomentSolverOptions opts;
  opts.max_moment = 5;
  opts.epsilon = 1e-12;
  const auto res = solver.solve(t, opts);
  const auto exact = prob::brownian_raw_moments(r, s2, t, 5);
  for (std::size_t j = 0; j <= 5; ++j)
    EXPECT_NEAR(res.weighted[j], exact[j],
                1e-9 * std::abs(exact[j]) + 1e-9)
        << "moment " << j;
}

TEST(RandomizationTest, UniformNegativeDriftClosedForm) {
  // Negative drift goes through the shift transform; the closed form must
  // still hold exactly.
  const double r = -2.3, s2 = 1.1, t = 0.6;
  const RandomizationMomentSolver solver(uniform_reward_model(3, r, s2));
  MomentSolverOptions opts;
  opts.max_moment = 4;
  opts.epsilon = 1e-12;
  const auto res = solver.solve(t, opts);
  const auto exact = prob::brownian_raw_moments(r, s2, t, 4);
  for (std::size_t j = 0; j <= 4; ++j)
    EXPECT_NEAR(res.weighted[j], exact[j],
                1e-9 * std::abs(exact[j]) + 1e-9);
}

TEST(RandomizationTest, DegenerateChainUsesClosedForm) {
  auto gen = ctmc::Generator::from_rates(2, std::vector<Triplet>{});
  const SecondOrderMrm m(std::move(gen), Vec{1.0, -3.0}, Vec{0.5, 2.0},
                         Vec{0.25, 0.75});
  const RandomizationMomentSolver solver(m);
  const auto res = solver.solve(2.0);
  const auto m0 = prob::brownian_raw_moments(1.0, 0.5, 2.0, 3);
  const auto m1 = prob::brownian_raw_moments(-3.0, 2.0, 2.0, 3);
  for (std::size_t j = 0; j <= 3; ++j) {
    EXPECT_DOUBLE_EQ(res.per_state[j][0], m0[j]);
    EXPECT_DOUBLE_EQ(res.per_state[j][1], m1[j]);
    EXPECT_NEAR(res.weighted[j], 0.25 * m0[j] + 0.75 * m1[j], 1e-12);
  }
}

TEST(RandomizationTest, MeanMatchesTransientIntegral) {
  // E[B(t) | Z(0)=i] = int_0^t sum_k p_ik(u) r_k du; integrate with Simpson.
  auto gen = ctmc::Generator::from_rates(
      3, std::vector<Triplet>{{0, 1, 2.0}, {1, 2, 1.0}, {2, 0, 3.0},
                              {1, 0, 0.5}});
  const Vec drifts{5.0, -1.0, 2.0};
  const SecondOrderMrm m(gen, drifts, Vec{0.1, 0.2, 0.3}, Vec{1.0, 0.0, 0.0});
  const double t = 1.2;

  const std::size_t intervals = 2000;  // even
  double integral = 0.0;
  for (std::size_t k = 0; k <= intervals; ++k) {
    const double u = t * static_cast<double>(k) / intervals;
    const Vec p = ctmc::transient_distribution(gen, m.initial(), u);
    const double f = linalg::dot(p, drifts);
    const double w = (k == 0 || k == intervals) ? 1.0 : (k % 2 == 1 ? 4.0 : 2.0);
    integral += w * f;
  }
  integral *= t / static_cast<double>(intervals) / 3.0;

  const RandomizationMomentSolver solver(m);
  MomentSolverOptions opts;
  opts.epsilon = 1e-12;
  const auto res = solver.solve(t, opts);
  EXPECT_NEAR(res.weighted[1], integral, 1e-8);
}

TEST(RandomizationTest, ZerothMomentIsOnePerState) {
  const RandomizationMomentSolver solver(uniform_reward_model(5, 2.0, 1.0));
  MomentSolverOptions opts;
  opts.epsilon = 1e-10;
  const auto res = solver.solve(3.0, opts);
  for (double v : res.per_state[0]) EXPECT_NEAR(v, 1.0, 1e-9);
}

TEST(RandomizationTest, TimeZeroGivesDeterministicZeroReward) {
  const RandomizationMomentSolver solver(uniform_reward_model(3, 1.0, 1.0));
  const auto res = solver.solve(0.0);
  EXPECT_DOUBLE_EQ(res.weighted[0], 1.0);
  EXPECT_DOUBLE_EQ(res.weighted[1], 0.0);
  EXPECT_DOUBLE_EQ(res.weighted[2], 0.0);
}

TEST(RandomizationTest, TimeZeroInsideMultiTimeGridIsExact) {
  // t = 0 as the first grid point must come back exactly deterministic
  // (B(0) = 0 with probability 1), not "small": weighted and per-state
  // moments of every order >= 1 are exactly 0.0 and the zeroth is 1.0.
  const RandomizationMomentSolver solver(uniform_reward_model(3, 1.0, 1.0));
  const std::vector<double> times{0.0, 0.5, 2.0};
  MomentSolverOptions opts;
  opts.max_moment = 3;
  const auto multi = solver.solve_multi(times, opts);
  ASSERT_EQ(multi.size(), times.size());
  EXPECT_EQ(multi[0].time, 0.0);
  EXPECT_EQ(multi[0].weighted[0], 1.0);
  for (std::size_t j = 1; j <= opts.max_moment; ++j) {
    EXPECT_EQ(multi[0].weighted[j], 0.0) << "moment " << j;
    for (double v : multi[0].per_state[j]) EXPECT_EQ(v, 0.0);
  }
  // The later grid points are unaffected by the t = 0 entry.
  const auto single = solver.solve(2.0, opts);
  for (std::size_t j = 0; j <= opts.max_moment; ++j)
    EXPECT_EQ(multi[2].weighted[j], single.weighted[j]);
}

TEST(RandomizationTest, MultiTimeMatchesSingleTimeCalls) {
  const RandomizationMomentSolver solver(uniform_reward_model(4, 1.5, 0.7));
  const std::vector<double> times{0.1, 0.4, 1.0, 2.5};
  MomentSolverOptions opts;
  opts.epsilon = 1e-11;
  const auto multi = solver.solve_multi(times, opts);
  ASSERT_EQ(multi.size(), times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    const auto single = solver.solve(times[i], opts);
    for (std::size_t j = 0; j <= opts.max_moment; ++j)
      EXPECT_NEAR(multi[i].weighted[j], single.weighted[j],
                  1e-10 * (1.0 + std::abs(single.weighted[j])));
  }
}

TEST(RandomizationTest, EpsilonControlsAccuracy) {
  const RandomizationMomentSolver solver(uniform_reward_model(3, 2.0, 1.5));
  MomentSolverOptions loose, tight;
  loose.epsilon = 1e-4;
  tight.epsilon = 1e-13;
  const auto rl = solver.solve(1.0, loose);
  const auto rt = solver.solve(1.0, tight);
  EXPECT_LT(rl.truncation_point, rt.truncation_point);
  for (std::size_t j = 0; j <= 3; ++j)
    EXPECT_NEAR(rl.weighted[j], rt.weighted[j], 2e-4);
  // Theorem-4 bound at the loose setting must itself be below epsilon.
  EXPECT_LT(rl.error_bound, loose.epsilon);
}

TEST(RandomizationTest, ScalePoliciesAgreeWhenBothValid) {
  // Drift-dominated model: the paper's d is sub-stochastic too, and the
  // expansion value must not depend on d.
  const SecondOrderMrm m(ring_generator(3, 3.0), Vec{5.0, 2.0, 1.0},
                         Vec{0.2, 0.1, 0.05}, linalg::unit_vec(3, 0));
  const RandomizationMomentSolver solver(m);
  MomentSolverOptions safe, paper;
  safe.epsilon = paper.epsilon = 1e-12;
  paper.scale_policy = DriftScalePolicy::kPaper;
  const auto rs = solver.solve(0.8, safe);
  const auto rp = solver.solve(0.8, paper);
  for (std::size_t j = 0; j <= 3; ++j)
    EXPECT_NEAR(rs.weighted[j], rp.weighted[j],
                1e-9 * (1.0 + std::abs(rs.weighted[j])));
}

TEST(RandomizationTest, TruncationPointMonotoneInOrderAndEpsilon) {
  const double qt = 50.0, d = 0.5;
  EXPECT_LE(RandomizationMomentSolver::truncation_point(qt, 1, d, 1e-9),
            RandomizationMomentSolver::truncation_point(qt, 4, d, 1e-9));
  EXPECT_LE(RandomizationMomentSolver::truncation_point(qt, 2, d, 1e-6),
            RandomizationMomentSolver::truncation_point(qt, 2, d, 1e-12));
  EXPECT_EQ(RandomizationMomentSolver::truncation_point(0.0, 2, d, 1e-9), 0u);
  EXPECT_EQ(RandomizationMomentSolver::truncation_point(qt, 2, 0.0, 1e-9),
            0u);
}

TEST(RandomizationTest, CenteredSolveMatchesBrownianCentralMoments) {
  // Uniform rewards, center = drift: moments of B(t) - r t = N(0, s2 t).
  const double r = 1.7, s2 = 0.8, t = 0.9;
  const RandomizationMomentSolver solver(uniform_reward_model(4, r, s2));
  MomentSolverOptions opts;
  opts.max_moment = 6;
  opts.epsilon = 1e-12;
  opts.center = r;
  const auto res = solver.solve(t, opts);
  const auto exact = prob::brownian_raw_moments(0.0, s2, t, 6);
  for (std::size_t j = 0; j <= 6; ++j)
    EXPECT_NEAR(res.weighted[j], exact[j], 1e-9 * (1.0 + std::abs(exact[j])))
        << "moment " << j;
}

TEST(RandomizationTest, CenteredSolveConsistentWithBinomialShift) {
  // For moderate orders the two routes agree: raw moments shifted by
  // -c t must equal the natively centered moments.
  const SecondOrderMrm m = varied_model(5, 1.5);
  const RandomizationMomentSolver solver(m);
  const double t = 0.7, c = 2.1;
  MomentSolverOptions raw_opts, centered_opts;
  raw_opts.max_moment = centered_opts.max_moment = 4;
  raw_opts.epsilon = centered_opts.epsilon = 1e-12;
  centered_opts.center = c;
  const auto raw = solver.solve(t, raw_opts);
  const auto centered = solver.solve(t, centered_opts);
  const auto mapped = shift_raw_moments(raw.weighted, -c * t);
  for (std::size_t j = 0; j <= 4; ++j)
    EXPECT_NEAR(centered.weighted[j], mapped[j],
                1e-8 * (1.0 + std::abs(mapped[j])))
        << "moment " << j;
}

TEST(RandomizationTest, CenteredHighOrderMomentsAvoidCancellation) {
  // High-order central moments via centered solve stay accurate where the
  // binomial route from raw moments loses all precision. Anchor: uniform
  // rewards => central moments are exactly those of N(0, s2 t), even at
  // order 20 with a large drift.
  const double r = 50.0, s2 = 2.0, t = 0.5;
  const RandomizationMomentSolver solver(uniform_reward_model(3, r, s2));
  MomentSolverOptions opts;
  opts.max_moment = 20;
  opts.epsilon = 1e-13;
  opts.center = r;
  const auto res = solver.solve(t, opts);
  const auto exact = prob::brownian_raw_moments(0.0, s2, t, 20);
  // E[B_c^20] = 19!! * (s2 t)^10 ~ 6.5e8 * 1 — must match to ~1e-8 rel.
  EXPECT_NEAR(res.weighted[20], exact[20], 1e-7 * exact[20]);
  EXPECT_NEAR(res.weighted[19], 0.0, 1e-7 * exact[20]);
}

TEST(RandomizationTest, TerminalWeightsOneRecoverPlainSolve) {
  const SecondOrderMrm m = varied_model(4, 1.0);
  const RandomizationMomentSolver solver(m);
  MomentSolverOptions opts;
  opts.epsilon = 1e-12;
  const auto plain = solver.solve(0.9, opts);
  const auto weighted =
      solver.solve_terminal_weighted(0.9, linalg::ones(4), opts);
  for (std::size_t j = 0; j <= 3; ++j)
    for (std::size_t i = 0; i < 4; ++i)
      EXPECT_NEAR(weighted.per_state[j][i], plain.per_state[j][i],
                  1e-9 * (1.0 + std::abs(plain.per_state[j][i])));
}

TEST(RandomizationTest, TerminalIndicatorsSumToPlainSolve) {
  // sum_k E[B^j ; Z(t)=k] = E[B^j].
  const SecondOrderMrm m = varied_model(5, 2.0);
  const RandomizationMomentSolver solver(m);
  MomentSolverOptions opts;
  opts.epsilon = 1e-12;
  const double t = 0.6;
  const auto plain = solver.solve(t, opts);
  linalg::Vec total(4, 0.0);
  for (std::size_t k = 0; k < 5; ++k) {
    const auto part =
        solver.solve_terminal_weighted(t, linalg::unit_vec(5, k), opts);
    for (std::size_t j = 0; j <= 3; ++j) total[j] += part.weighted[j];
  }
  for (std::size_t j = 0; j <= 3; ++j)
    EXPECT_NEAR(total[j], plain.weighted[j],
                1e-8 * (1.0 + std::abs(plain.weighted[j])));
}

TEST(RandomizationTest, TerminalZeroOrderIsTransientProbability) {
  // E[B^0 ; Z(t)=k] = Pr(Z(t)=k).
  const SecondOrderMrm m = varied_model(4, 1.0);
  const RandomizationMomentSolver solver(m);
  MomentSolverOptions opts;
  opts.max_moment = 0;
  opts.epsilon = 1e-13;
  const double t = 0.8;
  const auto p = ctmc::transient_distribution(m.generator(), m.initial(), t);
  for (std::size_t k = 0; k < 4; ++k) {
    const auto part =
        solver.solve_terminal_weighted(t, linalg::unit_vec(4, k), opts);
    EXPECT_NEAR(part.weighted[0], p[k], 1e-10) << "state " << k;
  }
}

TEST(RandomizationTest, TerminalWeightedValidation) {
  const SecondOrderMrm m = varied_model(3, 1.0);
  const RandomizationMomentSolver solver(m);
  EXPECT_THROW(solver.solve_terminal_weighted(1.0, linalg::ones(2)),
               std::invalid_argument);
  EXPECT_THROW(solver.solve_terminal_weighted(1.0, linalg::zeros(3)),
               std::invalid_argument);
  const linalg::Vec neg{1.0, -0.5, 0.0};
  EXPECT_THROW(solver.solve_terminal_weighted(1.0, neg),
               std::invalid_argument);
}

TEST(RandomizationTest, InputValidation) {
  const RandomizationMomentSolver solver(uniform_reward_model(2, 1.0, 1.0));
  EXPECT_THROW(solver.solve(-1.0), std::invalid_argument);
  MomentSolverOptions bad;
  bad.epsilon = 0.0;
  EXPECT_THROW(solver.solve(1.0, bad), std::invalid_argument);
}

// One test per validate_solver_inputs rejection, each checking that the
// message names the caller and the constraint (so a bad option fails fast
// with an actionable error instead of a downstream NaN).
TEST(RandomizationValidationTest, RejectsEmptyTimeList) {
  const RandomizationMomentSolver solver(uniform_reward_model(2, 1.0, 1.0));
  try {
    solver.solve_multi({});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("solve_multi"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("must not be empty"),
              std::string::npos);
  }
}

TEST(RandomizationValidationTest, RejectsNegativeTime) {
  const RandomizationMomentSolver solver(uniform_reward_model(2, 1.0, 1.0));
  const double times[] = {0.5, -0.25};
  try {
    solver.solve_multi(times);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(">= 0"), std::string::npos);
  }
}

TEST(RandomizationValidationTest, RejectsNonFiniteTime) {
  const RandomizationMomentSolver solver(uniform_reward_model(2, 1.0, 1.0));
  EXPECT_THROW(solver.solve(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_THROW(solver.solve(std::numeric_limits<double>::infinity()),
               std::invalid_argument);
}

TEST(RandomizationValidationTest, RejectsDuplicateTimePoints) {
  const RandomizationMomentSolver solver(uniform_reward_model(2, 1.0, 1.0));
  const double times[] = {0.5, 0.5};
  try {
    solver.solve_multi(times);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate time point"),
              std::string::npos)
        << e.what();
  }
}

TEST(RandomizationValidationTest, RejectsUnsortedTimePoints) {
  const RandomizationMomentSolver solver(uniform_reward_model(2, 1.0, 1.0));
  const double times[] = {0.25, 1.0, 0.5};
  try {
    solver.solve_multi(times);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("sorted ascending"),
              std::string::npos)
        << e.what();
  }
}

TEST(RandomizationValidationTest, RejectsNonPositiveEpsilon) {
  const RandomizationMomentSolver solver(uniform_reward_model(2, 1.0, 1.0));
  MomentSolverOptions bad;
  for (double eps : {0.0, -1e-9, std::numeric_limits<double>::quiet_NaN(),
                     std::numeric_limits<double>::infinity()}) {
    bad.epsilon = eps;
    EXPECT_THROW(solver.solve(1.0, bad), std::invalid_argument)
        << "epsilon = " << eps;
  }
}

TEST(RandomizationValidationTest, RejectsNonFiniteCenter) {
  const RandomizationMomentSolver solver(uniform_reward_model(2, 1.0, 1.0));
  MomentSolverOptions bad;
  bad.center = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(solver.solve(1.0, bad), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Property sweep: variance non-negative, mean invariant to sigma^2, even
// central moments monotone in sigma^2, across chain sizes and times.
// ---------------------------------------------------------------------------

class RandomizationPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

SecondOrderMrm varied_model(std::size_t n, double sigma2_scale) {
  std::vector<Triplet> rates;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    rates.push_back({i, i + 1, 1.0 + static_cast<double>(i)});
    rates.push_back({i + 1, i, 2.0});
  }
  auto gen = ctmc::Generator::from_rates(n, rates);
  Vec drifts(n), vars(n);
  for (std::size_t i = 0; i < n; ++i) {
    drifts[i] = static_cast<double>(n - i);  // decreasing rewards
    vars[i] = sigma2_scale * static_cast<double>(i);
  }
  return SecondOrderMrm(std::move(gen), std::move(drifts), std::move(vars),
                        linalg::unit_vec(n, 0));
}

TEST_P(RandomizationPropertyTest, VarianceNonNegativePerState) {
  const auto [n, t] = GetParam();
  const RandomizationMomentSolver solver(varied_model(n, 1.0));
  MomentSolverOptions opts;
  opts.max_moment = 2;
  opts.epsilon = 1e-11;
  const auto res = solver.solve(t, opts);
  for (std::size_t i = 0; i < n; ++i) {
    const double var =
        res.per_state[2][i] - res.per_state[1][i] * res.per_state[1][i];
    EXPECT_GE(var, -1e-8) << "state " << i << " t " << t;
  }
}

TEST_P(RandomizationPropertyTest, MeanIndependentOfVariances) {
  const auto [n, t] = GetParam();
  MomentSolverOptions opts;
  opts.max_moment = 1;
  opts.epsilon = 1e-12;
  const RandomizationMomentSolver first(varied_model(n, 0.0));
  const RandomizationMomentSolver second(varied_model(n, 3.0));
  const double m1 = first.solve(t, opts).weighted[1];
  const double m2 = second.solve(t, opts).weighted[1];
  EXPECT_NEAR(m1, m2, 1e-8 * (1.0 + std::abs(m1)));
}

TEST_P(RandomizationPropertyTest, SecondMomentMonotoneInVariance) {
  const auto [n, t] = GetParam();
  MomentSolverOptions opts;
  opts.max_moment = 2;
  opts.epsilon = 1e-11;
  double prev = -1.0;
  for (double scale : {0.0, 1.0, 5.0}) {
    const RandomizationMomentSolver solver(varied_model(n, scale));
    const double m2 = solver.solve(t, opts).weighted[2];
    EXPECT_GE(m2, prev - 1e-9);
    prev = m2;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomizationPropertyTest,
    ::testing::Combine(::testing::Values<std::size_t>(2, 5, 12),
                       ::testing::Values(0.05, 0.5, 2.0)));

// ---------------------------------------------------------------------------
// Thread-count invariance: the fused sweep partitions rows deterministically
// and every write is row-owned, so results must be BIT-identical for every
// thread count (a stronger guarantee than the 1e-13 relative bound the
// cross-solver tests rely on).
// ---------------------------------------------------------------------------

class RandomizationThreadTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  void TearDown() override { linalg::set_num_threads(0); }
};

TEST_P(RandomizationThreadTest, MomentsBitIdenticalToSingleThread) {
  const auto model = models::make_onoff_multiplexer(models::table1_params(1.0));
  const RandomizationMomentSolver solver(model);
  MomentSolverOptions opts;
  opts.max_moment = 3;
  opts.epsilon = 1e-10;
  const double times[] = {0.1, 1.0, 5.0};

  linalg::set_num_threads(1);
  const auto reference = solver.solve_multi(times, opts);

  linalg::set_num_threads(GetParam());
  const auto parallel = solver.solve_multi(times, opts);

  ASSERT_EQ(parallel.size(), reference.size());
  for (std::size_t ti = 0; ti < reference.size(); ++ti) {
    for (std::size_t j = 0; j <= opts.max_moment; ++j) {
      EXPECT_EQ(parallel[ti].weighted[j], reference[ti].weighted[j])
          << "t " << times[ti] << " moment " << j;
      for (std::size_t i = 0; i < model.num_states(); ++i)
        ASSERT_EQ(parallel[ti].per_state[j][i], reference[ti].per_state[j][i])
            << "t " << times[ti] << " moment " << j << " state " << i;
    }
  }
}

TEST_P(RandomizationThreadTest, TerminalWeightedBitIdenticalToSingleThread) {
  const auto model = models::make_onoff_multiplexer(models::table1_params(1.0));
  const RandomizationMomentSolver solver(model);
  MomentSolverOptions opts;
  opts.max_moment = 2;
  opts.epsilon = 1e-10;
  Vec weights(model.num_states());
  for (std::size_t i = 0; i < weights.size(); ++i)
    weights[i] = 1.0 + 0.25 * static_cast<double>(i % 3);

  linalg::set_num_threads(1);
  const auto reference = solver.solve_terminal_weighted(1.0, weights, opts);

  linalg::set_num_threads(GetParam());
  const auto parallel = solver.solve_terminal_weighted(1.0, weights, opts);

  for (std::size_t j = 0; j <= opts.max_moment; ++j) {
    EXPECT_EQ(parallel.weighted[j], reference.weighted[j]) << "moment " << j;
    for (std::size_t i = 0; i < model.num_states(); ++i)
      ASSERT_EQ(parallel.per_state[j][i], reference.per_state[j][i])
          << "moment " << j << " state " << i;
  }
}

TEST_P(RandomizationThreadTest, PanelKernelBitIdenticalToLegacyKernel) {
  // The panel SpMM sweep preserves the legacy fused kernel's per-element
  // accumulation order exactly, so at ANY thread count it must reproduce
  // the single-threaded legacy result bit-for-bit.
  const auto model = models::make_onoff_multiplexer(models::table1_params(1.0));
  const RandomizationMomentSolver solver(model);
  MomentSolverOptions opts;
  opts.max_moment = 3;
  opts.epsilon = 1e-10;
  const double times[] = {0.1, 1.0, 5.0};

  linalg::set_num_threads(1);
  opts.kernel = SweepKernel::kFusedVectors;
  const auto reference = solver.solve_multi(times, opts);

  linalg::set_num_threads(GetParam());
  opts.kernel = SweepKernel::kPanel;
  const auto panel = solver.solve_multi(times, opts);

  ASSERT_EQ(panel.size(), reference.size());
  for (std::size_t ti = 0; ti < reference.size(); ++ti)
    for (std::size_t j = 0; j <= opts.max_moment; ++j) {
      EXPECT_EQ(panel[ti].weighted[j], reference[ti].weighted[j])
          << "t " << times[ti] << " moment " << j;
      for (std::size_t i = 0; i < model.num_states(); ++i)
        ASSERT_EQ(panel[ti].per_state[j][i], reference[ti].per_state[j][i])
            << "t " << times[ti] << " moment " << j << " state " << i;
    }
}

TEST_P(RandomizationThreadTest, PanelTerminalWeightedBitIdenticalToLegacy) {
  const auto model = models::make_onoff_multiplexer(models::table1_params(1.0));
  const RandomizationMomentSolver solver(model);
  MomentSolverOptions opts;
  opts.max_moment = 2;
  opts.epsilon = 1e-10;
  Vec weights(model.num_states());
  for (std::size_t i = 0; i < weights.size(); ++i)
    weights[i] = 1.0 + 0.25 * static_cast<double>(i % 3);

  linalg::set_num_threads(1);
  opts.kernel = SweepKernel::kFusedVectors;
  const auto reference = solver.solve_terminal_weighted(1.0, weights, opts);

  linalg::set_num_threads(GetParam());
  opts.kernel = SweepKernel::kPanel;
  const auto panel = solver.solve_terminal_weighted(1.0, weights, opts);

  for (std::size_t j = 0; j <= opts.max_moment; ++j) {
    EXPECT_EQ(panel.weighted[j], reference.weighted[j]) << "moment " << j;
    for (std::size_t i = 0; i < model.num_states(); ++i)
      ASSERT_EQ(panel.per_state[j][i], reference.per_state[j][i])
          << "moment " << j << " state " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, RandomizationThreadTest,
                         ::testing::Values<std::size_t>(1, 2, 4));

TEST(RandomizationTest, TerminalWeightedFillsErrorBound) {
  // Regression: solve_terminal_weighted used to leave error_bound at 0.
  // The Theorem-4 bound applies unchanged (the normalized seed is
  // elementwise <= h, so Lemma 2's |U^(n)(k)| <= prefactor still holds).
  const SecondOrderMrm m = varied_model(4, 1.0);
  const RandomizationMomentSolver solver(m);
  MomentSolverOptions opts;
  opts.epsilon = 1e-8;
  const auto res =
      solver.solve_terminal_weighted(0.9, linalg::ones(4), opts);
  EXPECT_GT(res.error_bound, 0.0);
  EXPECT_LT(res.error_bound, opts.epsilon);
  // And it matches the plain solve's bound machinery at the same G.
  const auto plain = solver.solve(0.9, opts);
  EXPECT_EQ(res.truncation_point, plain.truncation_point);
}

}  // namespace
}  // namespace somrm::core
