// Tests for the BiCGSTAB Krylov solver.

#include "linalg/bicgstab.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/csr.hpp"

namespace somrm::linalg {
namespace {

LinearOperator csr_operator(const CsrMatrix& m) {
  return [&m](std::span<const double> x, std::span<double> y) {
    m.multiply(x, y);
  };
}

CsrMatrix trapezoid_like_matrix(std::size_t n, double h) {
  // I - h/2 Q for a birth-death generator: strongly diagonally dominant.
  CsrBuilder b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double exit = 0.0;
    if (i + 1 < n) {
      b.add(i, i + 1, -0.5 * h * 2.0);
      exit += 2.0;
    }
    if (i > 0) {
      b.add(i, i - 1, -0.5 * h * 3.0);
      exit += 3.0;
    }
    b.add(i, i, 1.0 + 0.5 * h * exit);
  }
  return std::move(b).build();
}

TEST(BicgstabTest, SolvesSmallSystemToTolerance) {
  const CsrMatrix a = trapezoid_like_matrix(20, 0.1);
  Vec x_true(20);
  for (std::size_t i = 0; i < 20; ++i)
    x_true[i] = std::sin(static_cast<double>(i));
  Vec b(20, 0.0);
  a.multiply(x_true, b);

  const auto res = bicgstab(csr_operator(a), b);
  ASSERT_TRUE(res.converged);
  EXPECT_LT(max_abs_diff(res.x, x_true), 1e-9);
}

TEST(BicgstabTest, PreconditionerHandlesBadlyScaledRows) {
  // Scale rows of a well-behaved system by wildly different factors; the
  // Jacobi preconditioner undoes the scaling exactly, so the preconditioned
  // solve must converge quickly and accurately where the plain solve
  // struggles.
  const std::size_t n = 200;
  const CsrMatrix base = trapezoid_like_matrix(n, 2.0);
  CsrBuilder scaled_builder(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    const double row_scale = std::pow(10.0, static_cast<double>(r % 7) - 3.0);
    for (std::size_t k = base.row_ptr()[r]; k < base.row_ptr()[r + 1]; ++k)
      scaled_builder.add(r, base.col_idx()[k], row_scale * base.values()[k]);
  }
  const CsrMatrix a = std::move(scaled_builder).build();

  Vec x_true(n);
  for (std::size_t i = 0; i < n; ++i)
    x_true[i] = std::sin(static_cast<double>(i) * 0.37);
  Vec b(n, 0.0);
  a.multiply(x_true, b);

  const auto precond =
      bicgstab(csr_operator(a), b, /*x0=*/{}, a.diagonal_vector());
  ASSERT_TRUE(precond.converged);
  EXPECT_LT(max_abs_diff(precond.x, x_true), 1e-7);
  EXPECT_LT(precond.iterations, 100u);
}

TEST(BicgstabTest, WarmStartFromExactSolutionReturnsImmediately) {
  const CsrMatrix a = trapezoid_like_matrix(10, 0.5);
  Vec x_true(10, 2.0);
  Vec b(10, 0.0);
  a.multiply(x_true, b);
  const auto res = bicgstab(csr_operator(a), b, x_true);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0u);
}

TEST(BicgstabTest, IdentityOperatorIsTrivial) {
  const LinearOperator eye = [](std::span<const double> x,
                                std::span<double> y) {
    std::copy(x.begin(), x.end(), y.begin());
  };
  const Vec b{1.0, 2.0, 3.0};
  const auto res = bicgstab(eye, b);
  ASSERT_TRUE(res.converged);
  EXPECT_LT(max_abs_diff(res.x, b), 1e-12);
}

TEST(BicgstabTest, ReportsResidualWhenIterationBudgetExhausted) {
  const CsrMatrix a = trapezoid_like_matrix(300, 5.0);
  Vec b(300);
  for (std::size_t i = 0; i < b.size(); ++i)
    b[i] = std::cos(static_cast<double>(i));
  BicgstabOptions opts;
  opts.max_iterations = 0;  // no work allowed: must report r = b honestly
  opts.rel_tolerance = 1e-15;
  const auto res = bicgstab(csr_operator(a), b, {}, {}, opts);
  EXPECT_FALSE(res.converged);
  EXPECT_NEAR(res.residual_norm, norm2(b), 1e-10);
}

TEST(BicgstabTest, RejectsMismatchedInputs) {
  const CsrMatrix a = trapezoid_like_matrix(4, 0.1);
  const Vec b(4, 1.0);
  const Vec bad(3, 1.0);
  EXPECT_THROW(bicgstab(csr_operator(a), b, bad), std::invalid_argument);
  EXPECT_THROW(bicgstab(csr_operator(a), b, {}, bad), std::invalid_argument);
}

TEST(BicgstabTest, ZeroDiagonalPreconditionerRejected) {
  const CsrMatrix a = trapezoid_like_matrix(4, 0.1);
  const Vec b(4, 1.0);
  const Vec zero_diag(4, 0.0);
  EXPECT_THROW(bicgstab(csr_operator(a), b, {}, zero_diag),
               std::invalid_argument);
}

}  // namespace
}  // namespace somrm::linalg
