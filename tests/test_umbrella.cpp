// Compile-and-smoke test for the umbrella header: one end-to-end flow
// touching each subsystem through somrm.hpp only.

#include "somrm.hpp"

#include <gtest/gtest.h>

namespace {

TEST(UmbrellaTest, EndToEndFlowThroughEverySubsystem) {
  using namespace somrm;

  // models -> core
  const auto model = models::make_onoff_multiplexer(
      models::table1_params(/*rate_variance=*/1.0));
  const core::RandomizationMomentSolver solver(model);
  core::MomentSolverOptions opts;
  opts.epsilon = 1e-10;
  const auto res = solver.solve(0.25, opts);
  EXPECT_GT(res.weighted[1], 0.0);

  // ctmc
  const auto pi = ctmc::stationary_distribution_gth(model.generator());
  EXPECT_NEAR(linalg::sum(pi), 1.0, 1e-12);
  const auto occ = ctmc::expected_occupancy(model.generator(),
                                            model.initial(), 0.25);
  EXPECT_NEAR(linalg::sum(occ), 0.25, 1e-9);

  // bounds
  core::MomentSolverOptions copts;
  copts.max_moment = 10;
  copts.epsilon = 1e-12;
  copts.center = res.weighted[1] / 0.25;
  const bounds::MomentBounder bounder(solver.solve(0.25, copts).weighted);
  const auto b = bounder.bounds_at(0.0);
  EXPECT_LE(b.lower, b.upper);

  // sim
  const sim::Simulator simulator(model);
  sim::SimulationOptions sopts;
  sopts.num_replications = 200;
  const auto est = simulator.estimate_moments(0.25, sopts);
  EXPECT_EQ(est.num_replications, 200u);

  // io round trip
  std::ostringstream out;
  io::save_model(out, model);
  std::istringstream in(out.str());
  const auto loaded = io::load_model(in);
  EXPECT_EQ(loaded.model.num_states(), model.num_states());

  // prob / linalg basics reachable
  EXPECT_NEAR(prob::normal_cdf(0.0, 0.0, 1.0), 0.5, 1e-15);
  EXPECT_TRUE(linalg::is_power_of_two(64));
}

}  // namespace
